// Clustering: k-median and k-means on Gaussian mixtures — the machine-
// learning face of facility location (§1 of the paper: "the popular k-means
// clustering ... are all examples of problems in this class").
//
// Generates a mixture of k Gaussian blobs, runs the §7 parallel local-search
// algorithms, compares against the exact optimum (small n) and the k-center
// seed they start from, and reports cluster recovery.
//
//	go run ./examples/clustering
package main

import (
	"fmt"

	facloc "repro"
)

func main() {
	const n, k = 60, 4
	ki := facloc.GenerateKClustered(3, n, k)

	fmt.Printf("instance: %d points, %d Gaussian blobs, k=%d\n\n", n, k, k)

	med := facloc.KMedianLocalSearch(ki, facloc.Options{Epsilon: 0.2, Seed: 1})
	fmt.Printf("k-median local search  (5+ε):  value %10.2f  swaps %d\n",
		med.Solution.Value, med.Stats.Rounds)

	means := facloc.KMeansLocalSearch(ki, facloc.Options{Epsilon: 0.2, Seed: 1})
	fmt.Printf("k-means local search  (81+ε):  value %10.2f  swaps %d\n",
		means.Solution.Value, means.Stats.Rounds)

	two := facloc.KMedianLocalSearch2Swap(ki, facloc.Options{Epsilon: 0.2, Seed: 1})
	fmt.Printf("k-median 2-swap        (4+ε):  value %10.2f  swaps %d\n\n",
		two.Solution.Value, two.Stats.Rounds)

	// Cluster recovery: with well-separated blobs, each chosen center should
	// land in a distinct blob.
	blobs := map[int]int{}
	for _, c := range med.Solution.Centers {
		blobs[c%k]++ // GenerateKClustered assigns point p to blob p%k
	}
	fmt.Printf("blobs covered by k-median centers: %d of %d\n", len(blobs), k)

	// Against the exact optimum (feasible at this size).
	opt := facloc.OptimalKCluster(ki, facloc.KMedian, facloc.Options{})
	fmt.Printf("exact k-median OPT: %.2f  (local search ratio %.3f, guarantee 5+ε)\n",
		opt.Solution.Value, med.Solution.Value/opt.Solution.Value)

	// The k-center seed the search starts from is an O(n)-approximation;
	// local search closes most of the gap.
	seed := facloc.KCenterParallel(ki, facloc.Options{Seed: 1})
	seedAsMedian := 0.0
	for j := 0; j < ki.N; j++ {
		best := -1.0
		for _, c := range seed.Solution.Centers {
			d := ki.Dist.At(c, j)
			if best < 0 || d < best {
				best = d
			}
		}
		seedAsMedian += best
	}
	fmt.Printf("k-center seed as k-median value: %.2f → improved %.1f%% by local search\n",
		seedAsMedian, 100*(1-med.Solution.Value/seedAsMedian))
}
