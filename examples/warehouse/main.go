// Warehouse placement: the motivating operations-research scenario for
// uncapacitated facility location.
//
// A retailer must pick warehouse sites among candidate locations with
// realistic rents (central sites cost more) to serve stores spread over a
// metro area in clusters. The example compares every implemented algorithm
// on the same instance, prints the open/connect cost split, and shows how
// the ε knob trades parallel rounds for solution quality.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"math/rand"

	facloc "repro"
)

func main() {
	in := buildMetroInstance(7)

	fmt.Printf("metro instance: %d candidate sites, %d stores\n", in.NF, in.NC)
	lo, hi := facloc.GammaBounds(in)
	fmt.Printf("Equation-2 bracket on OPT: [%.1f, %.1f]\n", lo, hi)
	lpVal, err := facloc.LPLowerBound(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("LP lower bound: %.2f\n\n", lpVal)

	type row struct {
		name string
		r    *facloc.Result
	}
	o := facloc.Options{Epsilon: 0.3, Seed: 11, TrackCost: true}
	rows := []row{
		{"greedy sequential (JMS, 1.861)", facloc.GreedySequential(in, o)},
		{"greedy parallel   (3.722+ε)", facloc.GreedyParallel(in, o)},
		{"primal-dual seq   (JV, 3)", facloc.PrimalDualSequential(in, o)},
		{"primal-dual par   (3+ε)", facloc.PrimalDualParallel(in, o)},
	}
	if lpr, _, err := facloc.LPRound(in, o); err == nil {
		rows = append(rows, row{"LP rounding       (4+ε)", lpr})
	}

	fmt.Printf("%-32s %8s %8s %8s %9s %7s\n",
		"algorithm", "open", "connect", "total", "vs LP", "rounds")
	for _, r := range rows {
		s := r.r.Solution
		fmt.Printf("%-32s %8.2f %8.2f %8.2f %9.3f %7d\n",
			r.name, s.FacilityCost, s.ConnectionCost, s.Cost(),
			s.Cost()/lpVal, r.r.Stats.Rounds)
	}

	// The slack trade-off: larger ε means fewer rounds, slightly worse cost.
	fmt.Printf("\nε sweep (parallel primal-dual):\n")
	fmt.Printf("%6s %8s %8s\n", "ε", "rounds", "cost")
	for _, eps := range []float64{0.05, 0.1, 0.3, 1.0} {
		r := facloc.PrimalDualParallel(in, facloc.Options{Epsilon: eps, Seed: 11})
		fmt.Printf("%6.2f %8d %8.2f\n", eps, r.Stats.Rounds, r.Solution.Cost())
	}
}

// buildMetroInstance lays stores out in clustered neighbourhoods with
// candidate warehouses on a coarse grid, rents rising toward the center.
func buildMetroInstance(seed int64) *facloc.Instance {
	rng := rand.New(rand.NewSource(seed))
	var pts [][]float64
	// 12 candidate sites on a 4×3 grid over the 100×100 metro area.
	var facIdx []int
	for gx := 0; gx < 4; gx++ {
		for gy := 0; gy < 3; gy++ {
			facIdx = append(facIdx, len(pts))
			pts = append(pts, []float64{float64(gx)*30 + 5, float64(gy)*35 + 10})
		}
	}
	// 80 stores in 5 neighbourhood clusters.
	var cliIdx []int
	for c := 0; c < 5; c++ {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		for s := 0; s < 16; s++ {
			cliIdx = append(cliIdx, len(pts))
			pts = append(pts, []float64{cx + rng.NormFloat64()*4, cy + rng.NormFloat64()*4})
		}
	}
	// Rent: base 20, +30 the closer the site is to the center (50,50).
	costs := make([]float64, len(facIdx))
	for i, p := range facIdx {
		dx, dy := pts[p][0]-50, pts[p][1]-50
		dist := dx*dx + dy*dy
		costs[i] = 20 + 30*(1-dist/5000)
		if costs[i] < 20 {
			costs[i] = 20
		}
	}
	in, err := facloc.FromPoints(pts, facIdx, cliIdx, costs)
	if err != nil {
		panic(err)
	}
	return in
}
