// Quickstart: the 60-second tour of the facloc public API.
//
// Builds a small facility-location instance, solves it with the paper's two
// parallel algorithms and the exact optimum, and prints the measured
// approximation ratios next to the proven guarantees.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	facloc "repro"
)

func main() {
	// Eight candidate warehouse sites, 40 customers, uniform in a square.
	in := facloc.GenerateUniform(42, 8, 40, 1, 6)

	opt := facloc.OptimalFacility(in, facloc.Options{})
	fmt.Printf("instance: %d facilities × %d clients, OPT = %.3f\n\n",
		in.NF, in.NC, opt.Solution.Cost())

	// Parallel primal-dual (§5 of the paper): (3+ε)-approximation.
	pd := facloc.PrimalDualParallel(in, facloc.Options{Epsilon: 0.3, Seed: 1})
	fmt.Printf("primal-dual (3+ε guarantee):  cost %.3f  ratio %.3f  rounds %d\n",
		pd.Solution.Cost(), pd.Solution.Cost()/opt.Solution.Cost(), pd.Stats.Rounds)

	// Parallel greedy (§4): (3.722+ε)-approximation.
	gr := facloc.GreedyParallel(in, facloc.Options{Epsilon: 0.3, Seed: 1})
	fmt.Printf("greedy      (3.722+ε):        cost %.3f  ratio %.3f  rounds %d\n",
		gr.Solution.Cost(), gr.Solution.Cost()/opt.Solution.Cost(), gr.Stats.Rounds)

	// LP rounding (§6.2): (4+ε) against the LP optimum.
	lpr, lpVal, err := facloc.LPRound(in, facloc.Options{Epsilon: 0.3, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("LP rounding (4+ε vs LP):      cost %.3f  vs LP %.3f (ratio %.3f)\n",
		lpr.Solution.Cost(), lpVal, lpr.Solution.Cost()/lpVal)

	// The primal-dual algorithm also certifies its own quality: its dual is
	// feasible, so Σα lower-bounds OPT without enumerating anything.
	fmt.Printf("\ncertificate: Σα = %.3f ≤ OPT, so primal-dual ratio ≤ %.3f (no enumeration needed)\n",
		pd.DualValue(), pd.Solution.Cost()/pd.DualValue())
}
