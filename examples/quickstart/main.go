// Quickstart: the 60-second tour of the facloc public API.
//
// Builds a small facility-location instance, runs every relevant solver from
// the unified registry against the exact optimum, then solves a whole
// workload concurrently through the batch engine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	facloc "repro"
)

func main() {
	// Eight candidate warehouse sites, 40 customers, uniform in a square.
	in := facloc.GenerateUniform(42, 8, 40, 1, 6)
	ctx := context.Background()
	opts := facloc.Options{Epsilon: 0.3, Seed: 1}

	// The registry knows every solver and the guarantee it was proven to
	// satisfy; "opt" is the exact enumeration baseline.
	opt, err := facloc.Solve(ctx, "opt", in, opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("instance: %d facilities × %d clients, OPT = %.3f\n\n",
		in.NF, in.NC, opt.Solution.Cost())

	for _, name := range []string{"pd-par", "greedy-par", "greedy-seq", "local-search", "lp-round"} {
		rep, err := facloc.Solve(ctx, name, in, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-13s cost %7.3f  ratio %.3f  guarantee %s\n",
			rep.Solver, rep.Solution.Cost(), rep.Solution.Cost()/opt.Solution.Cost(), rep.Guarantee)
	}

	// The batch engine solves many instances concurrently with per-solve
	// deadlines and seeds derived from one master seed — the result stream
	// is identical for any pool width.
	solver, _ := facloc.Lookup("pd-par")
	batch := facloc.NewBatch(solver, facloc.BatchOptions{
		Jobs:       4,
		Timeout:    2 * time.Second,
		MasterSeed: 42,
	})
	var workload []*facloc.Instance
	for i := 0; i < 8; i++ {
		workload = append(workload, facloc.GenerateUniform(int64(i), 8, 40, 1, 6))
	}
	results, err := batch.Collect(ctx, facloc.SliceSource(workload))
	if err != nil {
		panic(err)
	}
	total := 0.0
	for _, r := range results {
		total += r.Report.Solution.Cost()
	}
	fmt.Printf("\nbatch: solved %d instances concurrently, total cost %.3f\n", len(results), total)
}
