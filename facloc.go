// Package facloc is a parallel approximation-algorithms library for
// facility-location problems, reproducing Blelloch & Tangwongsan, "Parallel
// Approximation Algorithms for Facility-Location Problems" (SPAA 2010).
//
// It provides:
//
//   - Metric uncapacitated facility location: a parallel greedy algorithm
//     ((3.722+ε)-approximation, §4), a parallel primal-dual algorithm
//     ((3+ε)-approximation, §5), LP rounding given an optimal fractional
//     solution ((4+ε)-approximation, §6.2), and the sequential baselines
//     they parallelize (JMS greedy, Jain–Vazirani primal-dual).
//   - k-center: the parallel Hochbaum–Shmoys 2-approximation (§6.1) and the
//     sequential Gonzalez baseline.
//   - k-median and k-means: parallel local search with (5+ε) and (81+ε)
//     guarantees (§7), including a 2-swap extension.
//   - Exact brute-force solvers and an exact LP solver for measuring true
//     approximation ratios.
//   - A coreset/sketching layer (Sketched, SketchedUFL, the *-coreset
//     registry entries) that reduces million-point point-backed instances to
//     small weighted ones without materializing a distance matrix; client
//     weights thread through every solver family, so solve-on-coreset is
//     exact with respect to the weighted objective.
//   - A serving layer (internal/serve behind cmd/faclocd): a content-
//     addressed instance store (InstanceHash), a solution cache whose hits
//     return byte-identical reports without re-solving, an admission-
//     controlled solve queue with graceful drain, and a zero-allocation
//     assignment query path over cached solutions.
//
// All parallel algorithms run on goroutines and additionally account
// work/span in the paper's PRAM cost model, so the asymptotic claims can be
// checked empirically (see EXPERIMENTS.md).
//
// Entry points take an Options value; the zero value is usable. Every
// algorithm is deterministic for a fixed Options.Seed.
package facloc

import (
	"time"

	"repro/internal/core"
	"repro/internal/par"
)

// Instance is a metric uncapacitated facility-location instance.
// Construct with NewInstance or FromPoints.
type Instance = core.Instance

// KInstance is a k-median/k-means/k-center instance.
type KInstance = core.KInstance

// Solution is an integral facility-location solution.
type Solution = core.Solution

// KSolution is a k-clustering solution.
type KSolution = core.KSolution

// Objective selects a k-clustering objective.
type Objective = core.KObjective

// The k-clustering objectives.
const (
	KMedian = core.KMedian
	KMeans  = core.KMeans
	KCenter = core.KCenter
)

// Options configures a solver call. The zero value selects ε = 0.3, seed 0,
// and GOMAXPROCS workers.
type Options struct {
	// Epsilon is the paper's ε slack parameter: larger values mean fewer
	// parallel rounds and a slightly weaker approximation guarantee.
	Epsilon float64
	// Seed makes every randomized component deterministic.
	Seed int64
	// Workers caps goroutine fan-out; 0 means GOMAXPROCS.
	Workers int
	// TrackCost enables the PRAM work/span tally (small overhead).
	TrackCost bool
	// DenseLimit caps lazy→dense materialization for this solve: a
	// point-backed instance whose facility or client count exceeds it
	// refuses to densify (directing callers at the *-coreset solvers)
	// instead of allocating the matrix. 0 means core.DenseLimit. It bounds a
	// solve's memory; it never changes a successful solution.
	DenseLimit int
	// Trace, if non-nil, receives round-level trace events from the solve
	// (greedy outer rounds, primal-dual iterations, coreset build phases).
	// Implementations must be safe for concurrent use: batch solves share
	// one Options value across workers. Nil costs nothing and never changes
	// the solution.
	Trace par.Tracer
}

// Canonical reduces o to the fields a solution can depend on — the
// solution-cache identity the serving layer keys on. Epsilon is resolved to
// its default; Workers and TrackCost are cleared (every solver is bitwise
// deterministic across worker counts, and the tally never touches the
// solution); DenseLimit is cleared (it gates densification — it can turn a
// solve into an error, never change what a successful one returns); Trace is
// cleared (tracing observes a solve, it never alters one).
func (o Options) Canonical() Options {
	return Options{Epsilon: o.eps(), Seed: o.Seed}
}

func (o Options) ctx() (*par.Ctx, *par.Tally) {
	var tally *par.Tally
	if o.TrackCost {
		tally = &par.Tally{}
	}
	return &par.Ctx{Workers: o.Workers, Tally: tally, Trace: o.Trace}, tally
}

func (o Options) eps() float64 {
	if o.Epsilon <= 0 {
		return 0.3
	}
	return o.Epsilon
}

// Stats reports the measured behaviour of a solver call.
type Stats struct {
	// Work, Span, Calls are PRAM cost-model tallies (zero unless
	// Options.TrackCost was set).
	Work, Span, Calls int64
	// WallTime is the elapsed time of the call.
	WallTime time.Duration
	// Rounds is the algorithm's outer round/iteration count (meaning varies
	// by algorithm: greedy outer rounds, primal-dual dual-raising
	// iterations, local-search swaps, k-center probes, rounding rounds).
	Rounds int
	// InnerRounds is the total subselection/Luby round count where the
	// algorithm has a nested randomized loop.
	InnerRounds int
	// Fallbacks counts deterministic safety-valve activations (expected 0;
	// nonzero values mean a w.h.p. bound was exceeded).
	Fallbacks int
}

func statsFrom(tally *par.Tally, elapsed time.Duration) Stats {
	s := Stats{WallTime: elapsed}
	if tally != nil {
		c := tally.Snapshot()
		s.Work, s.Span, s.Calls = c.Work, c.Span, c.Calls
	}
	return s
}

// Result is a facility-location solver outcome.
type Result struct {
	Solution *Solution
	// Dual holds the α_j dual values produced by dual-fitting algorithms
	// (greedy, primal-dual); nil otherwise. See DualFeasibility.
	Dual  []float64
	Stats Stats
}

// KResult is a k-clustering solver outcome.
type KResult struct {
	Solution *KSolution
	Stats    Stats
}

// DualFeasibility returns the maximum violation of the Figure-1 dual
// constraints by r.Dual scaled by `scale` — non-positive means feasible, in
// which case scale·Σα is a lower bound on OPT (weak duality).
func (r *Result) DualFeasibility(in *Instance, scale float64) float64 {
	if r.Dual == nil {
		return 0
	}
	d := &core.DualSolution{Alpha: r.Dual}
	return d.MaxViolation(nil, in, scale)
}

// DualValue returns Σ_j α_j of the recorded dual (0 when absent).
func (r *Result) DualValue() float64 {
	s := 0.0
	for _, a := range r.Dual {
		s += a
	}
	return s
}
