//go:build race

package facloc

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
