package facloc

import (
	"context"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// Source streams UFL instances into the batch engine one at a time, so a
// workload never has to be materialized in memory. Next returns io.EOF to end
// the stream.
type Source interface {
	Next() (*Instance, error)
}

type sliceSource struct {
	ins []*Instance
	pos int
}

func (s *sliceSource) Next() (*Instance, error) {
	if s.pos >= len(s.ins) {
		return nil, io.EOF
	}
	in := s.ins[s.pos]
	s.pos++
	return in, nil
}

// SliceSource adapts an in-memory instance slice to a Source.
func SliceSource(ins []*Instance) Source {
	return &sliceSource{ins: ins}
}

// NewInstanceStream returns a Source decoding newline-delimited (or
// concatenated) JSON instances from r — the format WriteInstance emits and
// `faclocgen -count` generates. Instances are decoded lazily, one per Next.
func NewInstanceStream(r io.Reader) Source {
	return core.NewInstanceDecoder(r)
}

// BatchOptions configures a Batch run.
type BatchOptions struct {
	// Jobs is the number of instances solved concurrently; 0 means
	// GOMAXPROCS. Output order and content are independent of Jobs.
	Jobs int
	// Timeout is the per-solve deadline; a solve that exceeds it is abandoned
	// mid-round and reported with Err == context.DeadlineExceeded. Zero means
	// no deadline.
	Timeout time.Duration
	// MasterSeed seeds the whole workload. Each instance solves with
	// Options.Seed = DeriveSeed(MasterSeed, index), so per-instance results
	// depend only on the master seed and the instance's position in the
	// stream — never on Jobs or scheduling.
	MasterSeed int64
	// Base supplies the remaining per-solve options (Epsilon, TrackCost,
	// Workers). Seed is overridden per instance; Workers == 0 defaults to 1
	// inside a batch, since the pool already provides the parallelism.
	Base Options
}

// BatchResult is the outcome of one instance in a batch: its position in the
// input stream, the seed it solved with, and either a Report or an error
// (per-solve errors such as context.DeadlineExceeded do not abort the batch).
type BatchResult struct {
	Index  int
	Seed   int64
	Report *Report
	Err    error
}

// Batch is a concurrent solve engine: a worker pool that streams instances
// from a Source through one registered Solver, with per-solve deadlines,
// deterministic per-instance seeds, and results emitted in input order.
type Batch struct {
	solver Solver
	opt    BatchOptions
}

// NewBatch builds a batch engine over the given solver.
func NewBatch(s Solver, opt BatchOptions) *Batch {
	return &Batch{solver: s, opt: opt}
}

// DeriveSeed returns the per-instance seed for the given stream index: a
// splitmix64 stream over the master seed, matching the counter-based
// randomness of the generators — a pure function of (master, index), so
// results are reproducible regardless of pool size or scheduling.
func DeriveSeed(master int64, index int) int64 {
	x := uint64(master) + 0x9E3779B97F4A7C15*(uint64(index)+1)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return int64(x ^ (x >> 31))
}

// Run streams instances from src through the worker pool and calls emit once
// per instance, in input order, from Run's goroutine. At most ~2·Jobs
// instances are resident at any moment: Jobs in flight plus a bounded
// dispatch/reorder margin. Run returns the first fatal error — context
// cancellation, a Source decode failure, or a non-nil error from emit — and
// nil when the stream drains; per-solve failures are delivered through
// BatchResult.Err instead. All pool goroutines are joined before Run returns.
func (b *Batch) Run(ctx context.Context, src Source, emit func(BatchResult) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := b.opt.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type task struct {
		index int
		in    *Instance
	}
	tasks := make(chan task, jobs)
	results := make(chan BatchResult, jobs)

	// window is the residency bound: the dispatcher acquires a slot per
	// instance and the collector releases it only after in-order emission, so
	// a head-of-line slow solve stalls dispatch instead of letting completed
	// results pile up in the reorder buffer.
	window := make(chan struct{}, 2*jobs)

	// Dispatcher: pull from the source until EOF, error, or cancellation.
	// srcErr is read by Run only after the pool drains, which happens-after
	// close(tasks).
	var srcErr error
	go func() {
		defer close(tasks)
		for i := 0; ; i++ {
			select {
			case window <- struct{}{}:
			case <-runCtx.Done():
				return
			}
			in, err := src.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				srcErr = err
				cancel()
				return
			}
			select {
			case tasks <- task{index: i, in: in}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				select {
				case results <- b.solveOne(runCtx, t.index, t.in):
				case <-runCtx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: reorder results into input order so the output stream is
	// identical for any Jobs value. The window keeps the pending map at no
	// more than 2·jobs entries.
	pending := make(map[int]BatchResult, jobs)
	next := 0
	var emitErr error
	for r := range results {
		pending[r.Index] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			<-window
			if emitErr == nil && emit != nil {
				if err := emit(q); err != nil {
					emitErr = err
					cancel()
				}
			}
		}
	}

	switch {
	case ctx.Err() != nil:
		return ctx.Err()
	case emitErr != nil:
		return emitErr
	default:
		return srcErr
	}
}

// Collect runs the batch and returns every result in input order — the
// convenience form for workloads small enough to hold in memory.
func (b *Batch) Collect(ctx context.Context, src Source) ([]BatchResult, error) {
	var out []BatchResult
	err := b.Run(ctx, src, func(r BatchResult) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// solveOne solves a single instance under the per-solve deadline with its
// derived seed.
func (b *Batch) solveOne(ctx context.Context, index int, in *Instance) BatchResult {
	opts := b.opt.Base
	opts.Seed = DeriveSeed(b.opt.MasterSeed, index)
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	sctx := ctx
	if b.opt.Timeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, b.opt.Timeout)
		defer cancel()
	}
	rep, err := SolveWith(sctx, b.solver, in, opts)
	if err != nil {
		return BatchResult{Index: index, Seed: opts.Seed, Err: err}
	}
	return BatchResult{Index: index, Seed: opts.Seed, Report: rep}
}
