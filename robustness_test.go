package facloc

// Robustness and scale tests: the approximation *guarantees* require a
// metric, but the implementations must remain safe (terminate, produce
// feasible solutions) on adversarial non-metric inputs; and the logarithmic
// round bounds must keep holding as instances grow by two orders of
// magnitude.

import (
	"math"
	"math/rand"
	"testing"
)

// nonMetricInstance violates the triangle inequality aggressively.
func nonMetricInstance(seed int64, nf, nc int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	dist := make([][]float64, nf)
	for i := range dist {
		dist[i] = make([]float64, nc)
		for j := range dist[i] {
			// Heavy-tailed independent distances: no metric structure.
			dist[i][j] = math.Exp(rng.NormFloat64() * 3)
		}
	}
	costs := make([]float64, nf)
	for i := range costs {
		costs[i] = rng.Float64() * 10
	}
	in, err := NewInstance(costs, dist)
	if err != nil {
		panic(err)
	}
	return in
}

func TestAlgorithmsFeasibleOnNonMetricInput(t *testing.T) {
	// No quality guarantee applies, but every algorithm must terminate with
	// a feasible solution (all clients assigned to open facilities).
	for seed := int64(0); seed < 4; seed++ {
		in := nonMetricInstance(seed, 7, 20)
		for name, run := range map[string]func() *Result{
			"greedy-par": func() *Result { return GreedyParallel(in, Options{Epsilon: 0.3, Seed: seed}) },
			"greedy-seq": func() *Result { return GreedySequential(in, Options{}) },
			"pd-par":     func() *Result { return PrimalDualParallel(in, Options{Epsilon: 0.3, Seed: seed}) },
			"pd-seq":     func() *Result { return PrimalDualSequential(in, Options{}) },
			"ufl-ls":     func() *Result { return FacilityLocalSearch(in, Options{Epsilon: 0.3}) },
		} {
			r := run()
			if err := r.Solution.CheckFeasible(in, 1e-6); err != nil {
				t.Fatalf("%s on non-metric input: %v", name, err)
			}
		}
	}
}

func TestLPRoundFeasibleOnNonMetricInput(t *testing.T) {
	in := nonMetricInstance(5, 5, 12)
	r, _, err := LPRound(in, Options{Epsilon: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Solution.CheckFeasible(in, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeCostScales(t *testing.T) {
	// Mixed magnitudes: costs spanning 12 orders of magnitude must not break
	// the geometric schedules (they are what the γ/m² preprocessing and the
	// log(m³) round caps are for).
	in := GenerateUniform(6, 8, 24, 1, 6)
	for i := range in.FacCost {
		if i%2 == 0 {
			in.FacCost[i] = 1e-6
		} else {
			in.FacCost[i] = 1e6
		}
	}
	g := GreedyParallel(in, Options{Epsilon: 0.3, Seed: 6})
	p := PrimalDualParallel(in, Options{Epsilon: 0.3, Seed: 6})
	if err := g.Solution.CheckFeasible(in, 1e-6); err != nil {
		t.Fatal(err)
	}
	if err := p.Solution.CheckFeasible(in, 1e-6); err != nil {
		t.Fatal(err)
	}
	// Cheap facilities dominate: total cost must be near pure connection.
	if g.Solution.FacilityCost > 1 {
		t.Fatalf("greedy opened expensive facilities: %v", g.Solution.FacilityCost)
	}
}

func TestTinyDistancesNoUnderflow(t *testing.T) {
	in := GenerateUniform(7, 6, 15, 1, 6)
	for k := range in.D.A {
		in.D.A[k] *= 1e-12
	}
	for i := range in.FacCost {
		in.FacCost[i] *= 1e-12
	}
	r := PrimalDualParallel(in, Options{Epsilon: 0.3, Seed: 7})
	if err := r.Solution.CheckFeasible(in, 1e-18); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Solution.Cost()) || r.Solution.Cost() <= 0 {
		t.Fatalf("degenerate cost %v", r.Solution.Cost())
	}
}

func TestScaleRoundsStayLogarithmic(t *testing.T) {
	// Two orders of magnitude in m: rounds must grow like log m, not m.
	if testing.Short() {
		t.Skip("scale test")
	}
	eps := 0.3
	type point struct {
		m      int
		rounds int
	}
	var gPoints, pPoints []point
	for _, size := range [][2]int{{8, 32}, {24, 192}, {48, 640}} {
		in := GenerateUniform(8, size[0], size[1], 1, 6)
		g := GreedyParallel(in, Options{Epsilon: eps, Seed: 8})
		p := PrimalDualParallel(in, Options{Epsilon: eps, Seed: 8})
		gPoints = append(gPoints, point{in.M(), g.Stats.Rounds})
		pPoints = append(pPoints, point{in.M(), p.Stats.Rounds})
		if g.Stats.Fallbacks != 0 {
			t.Fatalf("m=%d: greedy fallbacks %d", in.M(), g.Stats.Fallbacks)
		}
	}
	for _, pts := range [][]point{gPoints, pPoints} {
		first, last := pts[0], pts[len(pts)-1]
		mGrowth := float64(last.m) / float64(first.m)
		rGrowth := float64(last.rounds+1) / float64(first.rounds+1)
		// Logarithmic: round growth must be far below linear in m growth.
		if rGrowth > mGrowth/4 {
			t.Fatalf("rounds grew %vx for %vx size: %+v", rGrowth, mGrowth, pts)
		}
		// And within the explicit log bound.
		bound := 3*math.Log(float64(last.m))/math.Log(1+eps) + 16
		if float64(last.rounds) > bound {
			t.Fatalf("rounds %d exceed log bound %v at m=%d", last.rounds, bound, last.m)
		}
	}
}

func TestScaleKCenter(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	ki := GenerateKUniform(9, 300, 8)
	r := KCenterParallel(ki, Options{Seed: 9})
	if len(r.Solution.Centers) > 8 {
		t.Fatalf("%d centers", len(r.Solution.Centers))
	}
	// probes ≤ ⌈log₂(n(n-1)/2)⌉ + 1
	bound := int(math.Ceil(math.Log2(300*299/2))) + 1
	if r.Stats.Rounds > bound {
		t.Fatalf("probes %d > %d", r.Stats.Rounds, bound)
	}
	gz := KCenterGreedy(ki, Options{})
	// Both 2-approx: mutual factor ≤ 2.
	if r.Solution.Value > 2*gz.Solution.Value+1e-9 {
		t.Fatalf("HS %v vs Gonzalez %v", r.Solution.Value, gz.Solution.Value)
	}
}

func TestManyClientsFewFacilities(t *testing.T) {
	// Skewed shapes exercise the matrix loops' both orientations.
	in := GenerateUniform(10, 3, 200, 1, 6)
	r := GreedyParallel(in, Options{Epsilon: 0.3, Seed: 10})
	if err := r.Solution.CheckFeasible(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	in2 := GenerateUniform(11, 20, 5, 1, 6)
	r2 := PrimalDualParallel(in2, Options{Epsilon: 0.3, Seed: 11})
	if err := r2.Solution.CheckFeasible(in2, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDistanceTies(t *testing.T) {
	// Facility exactly on top of clients plus duplicate facilities.
	pts := [][]float64{{0, 0}, {0, 0}, {9, 9}, {0, 0}, {0, 0}, {9, 9}, {9, 9}}
	in, err := FromPoints(pts, []int{0, 1, 2}, []int{3, 4, 5, 6}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := OptimalFacility(in, Options{})
	for _, r := range []*Result{
		GreedyParallel(in, Options{Seed: 12}),
		PrimalDualParallel(in, Options{Seed: 12}),
		FacilityLocalSearch(in, Options{}),
	} {
		if r.Solution.Cost() > 4*opt.Solution.Cost()+1e-9 {
			t.Fatalf("tie-heavy instance: %v vs OPT %v", r.Solution.Cost(), opt.Solution.Cost())
		}
	}
}
