package facloc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/par"
)

func batchWorkload(t *testing.T, n int) []*Instance {
	t.Helper()
	ins := make([]*Instance, n)
	for i := range ins {
		ins[i] = GenerateUniform(int64(100+i), 5, 10, 1, 6)
	}
	return ins
}

func mustLookup(t *testing.T, name string) Solver {
	t.Helper()
	s, ok := Lookup(name)
	if !ok {
		t.Fatalf("solver %q not registered", name)
	}
	return s
}

// TestBatch200Concurrent is the acceptance workload: 200 instances through
// an 8-wide pool, every result present, in input order, and feasible.
func TestBatch200Concurrent(t *testing.T) {
	ins := batchWorkload(t, 200)
	b := NewBatch(mustLookup(t, "pd-par"), BatchOptions{Jobs: 8, MasterSeed: 42})
	results, err := b.Collect(context.Background(), SliceSource(ins))
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if len(results) != len(ins) {
		t.Fatalf("%d results for %d instances", len(results), len(ins))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d: emission out of order", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("instance %d failed: %v", i, r.Err)
		}
		if err := r.Report.Solution.CheckFeasible(ins[i], 1e-6); err != nil {
			t.Fatalf("instance %d infeasible: %v", i, err)
		}
		if want := DeriveSeed(42, i); r.Seed != want {
			t.Fatalf("instance %d solved with seed %d, want derived %d", i, r.Seed, want)
		}
	}
}

// TestBatchDeterministicAcrossPoolSizes pins the splitmix64 seed derivation
// contract: the result stream is identical for any Jobs value.
func TestBatchDeterministicAcrossPoolSizes(t *testing.T) {
	ins := batchWorkload(t, 60)
	for _, solver := range []string{"greedy-par", "pd-par"} {
		var streams [][]BatchResult
		for _, jobs := range []int{1, 8} {
			b := NewBatch(mustLookup(t, solver), BatchOptions{Jobs: jobs, MasterSeed: 7})
			results, err := b.Collect(context.Background(), SliceSource(ins))
			if err != nil {
				t.Fatalf("%s jobs=%d: %v", solver, jobs, err)
			}
			streams = append(streams, results)
		}
		for i := range streams[0] {
			a, b := streams[0][i], streams[1][i]
			if a.Index != b.Index || a.Seed != b.Seed {
				t.Fatalf("%s instance %d: (index,seed) differ across pool sizes", solver, i)
			}
			if !reflect.DeepEqual(a.Report.Solution, b.Report.Solution) {
				t.Fatalf("%s instance %d: solutions differ between jobs=1 and jobs=8:\n%+v\nvs\n%+v",
					solver, i, a.Report.Solution, b.Report.Solution)
			}
		}
	}
}

// TestBatchDeadline verifies the per-solve deadline contract: expired solves
// report context.DeadlineExceeded and carry no partial solution, and the
// batch itself still completes.
func TestBatchDeadline(t *testing.T) {
	ins := batchWorkload(t, 20)
	b := NewBatch(mustLookup(t, "greedy-par"), BatchOptions{
		Jobs: 4, MasterSeed: 1, Timeout: time.Nanosecond,
	})
	results, err := b.Collect(context.Background(), SliceSource(ins))
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if len(results) != len(ins) {
		t.Fatalf("%d results for %d instances", len(results), len(ins))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("instance %d: err = %v, want context.DeadlineExceeded", i, r.Err)
		}
		if r.Report != nil {
			t.Fatalf("instance %d: partial report returned alongside deadline error", i)
		}
	}
}

// endlessSource yields generated instances forever — the harness for
// cancellation mid-pool.
type endlessSource struct{ i int }

func (s *endlessSource) Next() (*Instance, error) {
	s.i++
	return GenerateUniform(int64(s.i), 5, 10, 1, 6), nil
}

// TestBatchCancelMidPoolLeaksNoGoroutines cancels a running pool and asserts
// Run returns promptly with ctx.Err() and the goroutine count settles back.
func TestBatchCancelMidPoolLeaksNoGoroutines(t *testing.T) {
	// The par scheduler's workers are a process-wide singleton, not a leak:
	// pre-spawn them so the baseline below counts them and the check
	// measures only the batch pool's own goroutines.
	par.Warm(runtime.GOMAXPROCS(0) + 4)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	b := NewBatch(mustLookup(t, "pd-par"), BatchOptions{Jobs: 8, MasterSeed: 3})
	seen := 0
	err := b.Run(ctx, &endlessSource{}, func(BatchResult) error {
		seen++
		if seen == 25 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	cancel()

	// The pool goroutines are joined before Run returns, so the count should
	// settle immediately; poll briefly to absorb runtime background noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d before, %d after cancellation",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchEmitErrorAborts verifies a sink failure cancels the pool and
// surfaces the sink's error.
func TestBatchEmitErrorAborts(t *testing.T) {
	ins := batchWorkload(t, 30)
	sinkErr := errors.New("sink full")
	b := NewBatch(mustLookup(t, "pd-par"), BatchOptions{Jobs: 4, MasterSeed: 5})
	err := b.Run(context.Background(), SliceSource(ins), func(r BatchResult) error {
		if r.Index == 3 {
			return sinkErr
		}
		return nil
	})
	if !errors.Is(err, sinkErr) {
		t.Fatalf("Run returned %v, want the sink error", err)
	}
}

// TestBatchStreamedSource runs the batch off the JSON codec stream — the
// bounded-memory path faclocsolve -jobs uses.
func TestBatchStreamedSource(t *testing.T) {
	var buf bytes.Buffer
	ins := batchWorkload(t, 12)
	for _, in := range ins {
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("encoding workload: %v", err)
		}
	}
	b := NewBatch(mustLookup(t, "greedy-seq"), BatchOptions{Jobs: 4, MasterSeed: 9})
	results, err := b.Collect(context.Background(), NewInstanceStream(&buf))
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	if len(results) != len(ins) {
		t.Fatalf("%d results for %d streamed instances", len(results), len(ins))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("instance %d failed: %v", i, r.Err)
		}
		if err := r.Report.Solution.CheckFeasible(ins[i], 1e-6); err != nil {
			t.Fatalf("instance %d infeasible: %v", i, err)
		}
	}
}

// TestBatchSourceErrorPropagates verifies a mid-stream decode failure aborts
// the run with the decoder's error while earlier results still emit.
func TestBatchSourceErrorPropagates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInstance(&buf, GenerateUniform(1, 4, 6, 1, 6)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("{\"nf\": \"garbage\"\n")
	b := NewBatch(mustLookup(t, "greedy-seq"), BatchOptions{Jobs: 2})
	results, err := b.Collect(context.Background(), NewInstanceStream(&buf))
	if err == nil {
		t.Fatal("batch over a corrupt stream should fail")
	}
	if errors.Is(err, io.EOF) {
		t.Fatalf("decode failure reported as EOF: %v", err)
	}
	if len(results) > 1 {
		t.Fatalf("%d results from a stream with one valid instance", len(results))
	}
}

func TestDeriveSeedStream(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("different master seeds should derive different streams")
	}
	if DeriveSeed(1, 5) != DeriveSeed(1, 5) {
		t.Fatal("derivation must be a pure function")
	}
}

func ExampleBatch() {
	// Solve four instances concurrently with a per-solve deadline; results
	// arrive in input order no matter how the pool schedules them.
	solver, _ := Lookup("pd-par")
	batch := NewBatch(solver, BatchOptions{Jobs: 2, MasterSeed: 42, Timeout: time.Minute})

	var ins []*Instance
	for i := 0; i < 4; i++ {
		ins = append(ins, GenerateUniform(int64(i), 5, 12, 1, 6))
	}
	results, err := batch.Collect(context.Background(), SliceSource(ins))
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("instance %d: %d facilities open\n", r.Index, len(r.Report.Solution.Open))
	}
	// Output:
	// instance 0: 2 facilities open
	// instance 1: 2 facilities open
	// instance 2: 2 facilities open
	// instance 3: 2 facilities open
}
