package facloc

// Benchmarks: one per experiment table (E1–E13, see DESIGN.md §4 and
// EXPERIMENTS.md) plus micro-benchmarks of the §2 primitives and scaling
// benchmarks of each solver. Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark_E* entries regenerate the corresponding experiment at quick
// sizes, so `-bench Benchmark_E` is a fast end-to-end sanity pass over every
// paper claim.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/domset"
	"repro/internal/metric"
	"repro/internal/par"
)

func benchTable(b *testing.B, run func(bench.Sizes) *bench.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := run(bench.Quick)
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func Benchmark_E1_GreedyQuality(b *testing.B)    { benchTable(b, bench.E1GreedyQuality) }
func Benchmark_E2_Subselection(b *testing.B)     { benchTable(b, bench.E2SubselectionRounds) }
func Benchmark_E3_PrimalDual(b *testing.B)       { benchTable(b, bench.E3PrimalDual) }
func Benchmark_E4_KCenter(b *testing.B)          { benchTable(b, bench.E4KCenter) }
func Benchmark_E5_LPRounding(b *testing.B)       { benchTable(b, bench.E5LPRounding) }
func Benchmark_E6_LocalSearch(b *testing.B)      { benchTable(b, bench.E6LocalSearch) }
func Benchmark_E7_DominatorSets(b *testing.B)    { benchTable(b, bench.E7DominatorSets) }
func Benchmark_E8_LPDuality(b *testing.B)        { benchTable(b, bench.E8LPDuality) }
func Benchmark_E10_GammaBounds(b *testing.B)     { benchTable(b, bench.E10GammaBounds) }
func Benchmark_E11_CrossAlgorithm(b *testing.B)  { benchTable(b, bench.E11CrossAlgorithm) }
func Benchmark_E12_EpsilonTradeoff(b *testing.B) { benchTable(b, bench.E12EpsilonTradeoff) }
func Benchmark_E13_PSwapAblation(b *testing.B)   { benchTable(b, bench.E13PSwapAblation) }
func Benchmark_E14_UFLLocalSearch(b *testing.B)  { benchTable(b, bench.E14UFLLocalSearch) }

// E9 (primitive timing) is benchmarked directly below rather than through
// the table (which itself runs timers).

func BenchmarkPrimitiveSum(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		xs := make([]float64, n)
		rng := rand.New(rand.NewSource(1))
		for i := range xs {
			xs[i] = rng.Float64()
		}
		for _, workers := range []int{1, 2} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				c := &par.Ctx{Workers: workers}
				b.SetBytes(int64(n * 8))
				for i := 0; i < b.N; i++ {
					par.SumFloat(c, xs)
				}
			})
		}
	}
}

func BenchmarkPrimitiveScan(b *testing.B) {
	n := 1 << 18
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i % 7)
	}
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := &par.Ctx{Workers: workers}
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				par.PrefixSums(c, xs)
			}
		})
	}
}

func BenchmarkPrimitiveSort(b *testing.B) {
	n := 1 << 16
	base := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range base {
		base[i] = rng.Float64()
	}
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := &par.Ctx{Workers: workers}
			for i := 0; i < b.N; i++ {
				xs := append([]float64(nil), base...)
				par.SortFloats(c, xs)
			}
		})
	}
}

// Distance-substrate benchmarks: the flat parallel layer of internal/metric.
// Run workers=1 against workers=GOMAXPROCS to see the construction speedup
// (the ISSUE-1 acceptance check):
//
//	go test -bench 'DistFullMatrix|DistSubmatrix|MetricClosure' -benchmem

func distWorkerCounts() []int {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 {
		return []int{1}
	}
	return []int{1, p}
}

func BenchmarkDistFullMatrix(b *testing.B) {
	for _, n := range []int{256, 1024} {
		e := metric.UniformBox(nil, rand.New(rand.NewSource(1)), n, 8, 100)
		for _, workers := range distWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				c := &par.Ctx{Workers: workers}
				b.ReportAllocs()
				b.SetBytes(int64(n) * int64(n) * 8)
				for i := 0; i < b.N; i++ {
					metric.FullMatrix(c, e)
				}
			})
		}
	}
}

func BenchmarkDistSubmatrixRows(b *testing.B) {
	const n, nf = 2048, 256
	e := metric.UniformBox(nil, rand.New(rand.NewSource(2)), n, 8, 100)
	rows := make([]int, nf)
	cols := make([]int, n-nf)
	for i := range rows {
		rows[i] = i
	}
	for j := range cols {
		cols[j] = nf + j
	}
	for _, workers := range distWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := &par.Ctx{Workers: workers}
			b.ReportAllocs()
			b.SetBytes(int64(nf) * int64(n-nf) * 8)
			for i := 0; i < b.N; i++ {
				metric.SubmatrixRows(c, e, rows, cols)
			}
		})
	}
}

func BenchmarkMetricClosure(b *testing.B) {
	for _, n := range []int{128, 384} {
		base := metric.RandomGraphMetric(nil, rand.New(rand.NewSource(3)), n, 0.05, 50)
		for _, workers := range distWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				c := &par.Ctx{Workers: workers}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m := base.Clone()
					b.StartTimer()
					metric.MetricClosure(c, m)
				}
			})
		}
	}
}

func BenchmarkDistOracleRow(b *testing.B) {
	const n = 4096
	e := metric.UniformBox(nil, rand.New(rand.NewSource(4)), n, 8, 100)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := metric.NewOracle(e)
			o.Row(i % n)
		}
	})
	b.Run("cached", func(b *testing.B) {
		o := metric.NewOracle(e)
		o.Row(7)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.Row(7)
		}
	})
}

func BenchmarkMaxDom(b *testing.B) {
	for _, n := range []int{128, 512} {
		rng := rand.New(rand.NewSource(3))
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 4.0/float64(n) {
					adj[i][j], adj[j][i] = true, true
				}
			}
		}
		oracle := func(i, j int) bool { return adj[i][j] }
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				domset.MaxDom(nil, n, oracle, nil, uint64(i))
			}
		})
	}
}

func benchUFL(b *testing.B, run func(in *Instance)) {
	for _, size := range [][2]int{{8, 32}, {16, 96}, {24, 192}} {
		in := GenerateUniform(7, size[0], size[1], 1, 6)
		b.Run(fmt.Sprintf("m=%d", in.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(in)
			}
		})
	}
}

func BenchmarkGreedyParallel(b *testing.B) {
	benchUFL(b, func(in *Instance) { GreedyParallel(in, Options{Epsilon: 0.3, Seed: 1}) })
}

func BenchmarkGreedySequential(b *testing.B) {
	benchUFL(b, func(in *Instance) { GreedySequential(in, Options{}) })
}

func BenchmarkPrimalDualParallel(b *testing.B) {
	benchUFL(b, func(in *Instance) { PrimalDualParallel(in, Options{Epsilon: 0.3, Seed: 1}) })
}

func BenchmarkPrimalDualSequential(b *testing.B) {
	benchUFL(b, func(in *Instance) { PrimalDualSequential(in, Options{}) })
}

func BenchmarkLPRound(b *testing.B) {
	in := GenerateUniform(7, 8, 32, 1, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := LPRound(in, Options{Epsilon: 0.3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKCenterParallel(b *testing.B) {
	for _, n := range []int{32, 128} {
		ki := GenerateKUniform(5, n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				KCenterParallel(ki, Options{Seed: int64(i)})
			}
		})
	}
}

func BenchmarkKMedianLocalSearch(b *testing.B) {
	for _, n := range []int{32, 96} {
		ki := GenerateKClustered(5, n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				KMedianLocalSearch(ki, Options{Epsilon: 0.3, Seed: 1})
			}
		})
	}
}

// BenchmarkWorkScaling_Greedy verifies the Theorem 4.9 work bound shape at
// benchmark time: counted work divided by m·log²₍₁₊ε₎m should stay roughly
// flat across sizes (reported as the custom metric work/m·log²).
func BenchmarkWorkScaling_Greedy(b *testing.B) {
	for _, size := range [][2]int{{8, 32}, {16, 96}, {24, 192}} {
		in := GenerateUniform(9, size[0], size[1], 1, 6)
		b.Run(fmt.Sprintf("m=%d", in.M()), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				r := GreedyParallel(in, Options{Epsilon: 0.3, Seed: 1, TrackCost: true})
				last = float64(r.Stats.Work)
			}
			m := float64(in.M())
			lg := logBaseBench(1.3, m)
			b.ReportMetric(last/(m*lg*lg), "work/m·log²")
		})
	}
}

func logBaseBench(base, x float64) float64 {
	l := 0.0
	for v := 1.0; v < x; v *= base {
		l++
	}
	return l
}
