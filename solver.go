package facloc

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/greedy"
	"repro/internal/kcenter"
	"repro/internal/localsearch"
	"repro/internal/lp"
	"repro/internal/par"
	"repro/internal/primaldual"
	"repro/internal/rounding"
)

// Guarantee describes a solver's proven approximation guarantee, the quantity
// the conformance suite enforces against the exact optimum.
type Guarantee struct {
	// Factor is the approximation factor: cost ≤ Bound(ε)·OPT.
	Factor float64
	// EpsSlack marks guarantees of the (c+ε) / c(1+O(ε)) form, whose bound
	// widens with Options.Epsilon.
	EpsSlack bool
	// Exact marks solvers that return the optimum (Factor is ignored).
	Exact bool
	// Note cites the theorem or paper the guarantee comes from.
	Note string
}

// Bound returns the cost bound factor at slack ε: Factor·(1+ε) for EpsSlack
// guarantees, Factor otherwise, and 1 for exact solvers.
func (g Guarantee) Bound(eps float64) float64 {
	if g.Exact {
		return 1
	}
	if g.EpsSlack {
		return g.Factor * (1 + eps)
	}
	return g.Factor
}

func (g Guarantee) String() string {
	switch {
	case g.Exact:
		return "exact"
	case g.EpsSlack:
		return fmt.Sprintf("%.4g(1+ε)-approx (%s)", g.Factor, g.Note)
	default:
		return fmt.Sprintf("%.4g-approx (%s)", g.Factor, g.Note)
	}
}

// Solver is a registered uncapacitated-facility-location algorithm. Solve
// must honor ctx: implementations backed by round-based algorithms check it
// between rounds and return ctx.Err() (e.g. context.DeadlineExceeded) instead
// of a partial solution.
type Solver interface {
	Name() string
	Guarantee() Guarantee
	Solve(ctx context.Context, pc *par.Ctx, in *core.Instance, opts Options) (*Solution, error)
}

// KSolver is a registered k-clustering algorithm; Objective reports which of
// the §2 objectives its guarantee is stated for. SolveK has the same
// cancellation contract as Solver.Solve.
type KSolver interface {
	Name() string
	Objective() Objective
	Guarantee() Guarantee
	SolveK(ctx context.Context, pc *par.Ctx, ki *core.KInstance, opts Options) (*KSolution, error)
}

// Report is the uniform outcome of a registry solve: which solver ran, the
// guarantee it claims, the solution, and the measured work/span/wall-time.
type Report struct {
	Solver    string
	Guarantee Guarantee
	Solution  *Solution
	Stats     Stats
}

// KReport is the k-clustering counterpart of Report.
type KReport struct {
	Solver    string
	Guarantee Guarantee
	Solution  *KSolution
	Stats     Stats
}

// ---------- registry ----------

var registry = struct {
	sync.RWMutex
	ufl map[string]Solver
	k   map[string]KSolver
}{ufl: map[string]Solver{}, k: map[string]KSolver{}}

// Register adds a UFL solver under its Name. It panics on empty or duplicate
// names — registration is an init-time, programmer-error surface.
func Register(s Solver) {
	registry.Lock()
	defer registry.Unlock()
	name := s.Name()
	if name == "" {
		panic("facloc: Register with empty solver name")
	}
	if _, dup := registry.ufl[name]; dup {
		panic("facloc: duplicate solver " + name)
	}
	registry.ufl[name] = s
}

// RegisterK adds a k-clustering solver under its Name, with the same rules as
// Register.
func RegisterK(s KSolver) {
	registry.Lock()
	defer registry.Unlock()
	name := s.Name()
	if name == "" {
		panic("facloc: RegisterK with empty solver name")
	}
	if _, dup := registry.k[name]; dup {
		panic("facloc: duplicate k-solver " + name)
	}
	registry.k[name] = s
}

// Lookup returns the registered UFL solver with the given name.
func Lookup(name string) (Solver, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.ufl[name]
	return s, ok
}

// LookupK returns the registered k-clustering solver with the given name.
func LookupK(name string) (KSolver, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.k[name]
	return s, ok
}

// Solvers returns every registered UFL solver, sorted by name.
func Solvers() []Solver {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Solver, 0, len(registry.ufl))
	for _, s := range registry.ufl {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// KSolvers returns every registered k-clustering solver, sorted by name.
func KSolvers() []KSolver {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]KSolver, 0, len(registry.k))
	for _, s := range registry.k {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Solve looks up a registered solver by name and runs it, assembling the
// uniform Report (tally from Options.TrackCost, wall time always).
func Solve(ctx context.Context, name string, in *Instance, opts Options) (*Report, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("facloc: unknown solver %q", name)
	}
	return SolveWith(ctx, s, in, opts)
}

// SolveWith runs the given solver and assembles its Report.
func SolveWith(ctx context.Context, s Solver, in *Instance, opts Options) (*Report, error) {
	if err := par.CtxErr(ctx); err != nil {
		return nil, err
	}
	c, tally := opts.ctx()
	start := time.Now()
	sol, err := s.Solve(ctx, c, in, opts)
	if err != nil {
		return nil, err
	}
	return &Report{
		Solver:    s.Name(),
		Guarantee: s.Guarantee(),
		Solution:  sol,
		Stats:     statsFrom(tally, time.Since(start)),
	}, nil
}

// SolveK looks up a registered k-clustering solver by name and runs it.
func SolveK(ctx context.Context, name string, ki *KInstance, opts Options) (*KReport, error) {
	s, ok := LookupK(name)
	if !ok {
		return nil, fmt.Errorf("facloc: unknown k-solver %q", name)
	}
	return SolveKWith(ctx, s, ki, opts)
}

// SolveKWith runs the given k-clustering solver and assembles its KReport.
func SolveKWith(ctx context.Context, s KSolver, ki *KInstance, opts Options) (*KReport, error) {
	if err := par.CtxErr(ctx); err != nil {
		return nil, err
	}
	c, tally := opts.ctx()
	start := time.Now()
	sol, err := s.SolveK(ctx, c, ki, opts)
	if err != nil {
		return nil, err
	}
	return &KReport{
		Solver:    s.Name(),
		Guarantee: s.Guarantee(),
		Solution:  sol,
		Stats:     statsFrom(tally, time.Since(start)),
	}, nil
}

// ---------- built-in adapters ----------

type funcSolver struct {
	name string
	g    Guarantee
	fn   func(ctx context.Context, pc *par.Ctx, in *core.Instance, opts Options) (*Solution, error)
}

func (s *funcSolver) Name() string         { return s.name }
func (s *funcSolver) Guarantee() Guarantee { return s.g }
func (s *funcSolver) Solve(ctx context.Context, pc *par.Ctx, in *core.Instance, opts Options) (*Solution, error) {
	// The built-in algorithms walk dense rows; lazy point-backed instances
	// are materialized here (bounded by Options.DenseLimit, default
	// core.DenseLimit — past it the error points at the *-coreset solvers,
	// which never densify).
	in, err := in.DensifiedCap(pc, opts.DenseLimit)
	if err != nil {
		return nil, err
	}
	return s.fn(ctx, pc, in, opts)
}

type funcKSolver struct {
	name string
	obj  Objective
	g    Guarantee
	fn   func(ctx context.Context, pc *par.Ctx, ki *core.KInstance, opts Options) (*KSolution, error)
}

func (s *funcKSolver) Name() string         { return s.name }
func (s *funcKSolver) Objective() Objective { return s.obj }
func (s *funcKSolver) Guarantee() Guarantee { return s.g }
func (s *funcKSolver) SolveK(ctx context.Context, pc *par.Ctx, ki *core.KInstance, opts Options) (*KSolution, error) {
	// See funcSolver.Solve: dense algorithms densify lazy instances up to
	// Options.DenseLimit (default core.DenseLimit); the *-coreset wrappers
	// never take this path.
	ki, err := ki.DensifiedCap(pc, opts.DenseLimit)
	if err != nil {
		return nil, err
	}
	return s.fn(ctx, pc, ki, opts)
}

func init() {
	Register(&funcSolver{
		name: "greedy-par",
		g:    Guarantee{Factor: 3.722, EpsSlack: true, Note: "Theorem 4.9"},
		fn: func(ctx context.Context, pc *par.Ctx, in *core.Instance, o Options) (*Solution, error) {
			res, err := greedy.Parallel(ctx, pc, in, &greedy.Options{Epsilon: o.eps(), Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			return res.Sol, nil
		},
	})
	Register(&funcSolver{
		name: "greedy-seq",
		g:    Guarantee{Factor: 1.861, Note: "JMS greedy [JMM+03]"},
		fn: func(ctx context.Context, pc *par.Ctx, in *core.Instance, o Options) (*Solution, error) {
			if err := par.CtxErr(ctx); err != nil {
				return nil, err
			}
			return greedy.SequentialJMS(pc, in).Sol, nil
		},
	})
	Register(&funcSolver{
		name: "pd-par",
		g:    Guarantee{Factor: 3, EpsSlack: true, Note: "Theorem 5.4"},
		fn: func(ctx context.Context, pc *par.Ctx, in *core.Instance, o Options) (*Solution, error) {
			res, err := primaldual.Parallel(ctx, pc, in, &primaldual.Options{Epsilon: o.eps(), Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			return res.Sol, nil
		},
	})
	Register(&funcSolver{
		name: "pd-seq",
		g:    Guarantee{Factor: 3, Note: "Jain–Vazirani [JV01]"},
		fn: func(ctx context.Context, pc *par.Ctx, in *core.Instance, o Options) (*Solution, error) {
			if err := par.CtxErr(ctx); err != nil {
				return nil, err
			}
			return primaldual.SequentialJV(pc, in).Sol, nil
		},
	})
	Register(&funcSolver{
		name: "local-search",
		g:    Guarantee{Factor: 3, EpsSlack: true, Note: "§7 remark, [AGK+04]"},
		fn: func(ctx context.Context, pc *par.Ctx, in *core.Instance, o Options) (*Solution, error) {
			res, err := localsearch.UFLLocalSearch(ctx, pc, in, &localsearch.UFLOptions{Epsilon: o.eps()})
			if err != nil {
				return nil, err
			}
			return res.Sol, nil
		},
	})
	Register(&funcSolver{
		name: "lp-round",
		g:    Guarantee{Factor: 4, EpsSlack: true, Note: "Theorem 6.5, vs the LP optimum ≤ OPT"},
		fn: func(ctx context.Context, pc *par.Ctx, in *core.Instance, o Options) (*Solution, error) {
			if err := par.CtxErr(ctx); err != nil {
				return nil, err
			}
			frac, err := lp.SolveFacility(in)
			if err != nil {
				return nil, fmt.Errorf("facloc: solving the facility LP: %w", err)
			}
			if err := par.CtxErr(ctx); err != nil {
				return nil, err
			}
			res := rounding.Round(pc, in, frac, &rounding.Options{Epsilon: o.eps(), Seed: o.Seed})
			return res.Sol, nil
		},
	})
	Register(&funcSolver{
		name: "opt",
		g:    Guarantee{Exact: true, Note: "subset enumeration"},
		fn: func(ctx context.Context, pc *par.Ctx, in *core.Instance, o Options) (*Solution, error) {
			if err := par.CtxErr(ctx); err != nil {
				return nil, err
			}
			if in.NF > exact.MaxEnumFacilities {
				return nil, fmt.Errorf("facloc: %d facilities exceed the enumeration limit %d", in.NF, exact.MaxEnumFacilities)
			}
			return exact.FacilityOPT(pc, in), nil
		},
	})

	RegisterK(&funcKSolver{
		name: "kcenter",
		obj:  KCenter,
		g:    Guarantee{Factor: 2, Note: "Theorem 6.1 (Hochbaum–Shmoys)"},
		fn: func(ctx context.Context, pc *par.Ctx, ki *core.KInstance, o Options) (*KSolution, error) {
			res, err := kcenter.HochbaumShmoys(ctx, pc, ki, uint64(o.Seed))
			if err != nil {
				return nil, err
			}
			return res.Sol, nil
		},
	})
	RegisterK(&funcKSolver{
		name: "kcenter-gonzalez",
		obj:  KCenter,
		g:    Guarantee{Factor: 2, Note: "Gonzalez farthest-point [Gon85]"},
		fn: func(ctx context.Context, pc *par.Ctx, ki *core.KInstance, o Options) (*KSolution, error) {
			if err := par.CtxErr(ctx); err != nil {
				return nil, err
			}
			return kcenter.Gonzalez(pc, ki, int(o.Seed)%maxInt(ki.N, 1)), nil
		},
	})
	RegisterK(&funcKSolver{
		name: "kmedian",
		obj:  KMedian,
		g:    Guarantee{Factor: 5, EpsSlack: true, Note: "Theorem 7.1"},
		fn: func(ctx context.Context, pc *par.Ctx, ki *core.KInstance, o Options) (*KSolution, error) {
			res, err := localsearch.KMedian(ctx, pc, ki, &localsearch.Options{Epsilon: o.eps(), Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			return res.Sol, nil
		},
	})
	RegisterK(&funcKSolver{
		name: "kmedian-2swap",
		obj:  KMedian,
		g:    Guarantee{Factor: 4, EpsSlack: true, Note: "§7 remark, 3+2/p for p=2"},
		fn: func(ctx context.Context, pc *par.Ctx, ki *core.KInstance, o Options) (*KSolution, error) {
			res, err := localsearch.KMedian(ctx, pc, ki, &localsearch.Options{Epsilon: o.eps(), Seed: o.Seed, SwapSize: 2})
			if err != nil {
				return nil, err
			}
			return res.Sol, nil
		},
	})
	RegisterK(&funcKSolver{
		name: "kmeans",
		obj:  KMeans,
		g:    Guarantee{Factor: 81, EpsSlack: true, Note: "§7, general metrics"},
		fn: func(ctx context.Context, pc *par.Ctx, ki *core.KInstance, o Options) (*KSolution, error) {
			res, err := localsearch.KMeans(ctx, pc, ki, &localsearch.Options{Epsilon: o.eps(), Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			return res.Sol, nil
		},
	})
	for _, obj := range []Objective{KCenter, KMedian, KMeans} {
		obj := obj
		RegisterK(&funcKSolver{
			name: obj.String() + "-opt",
			obj:  obj,
			g:    Guarantee{Exact: true, Note: "C(n,k) enumeration"},
			fn: func(ctx context.Context, pc *par.Ctx, ki *core.KInstance, o Options) (*KSolution, error) {
				if err := par.CtxErr(ctx); err != nil {
					return nil, err
				}
				if !exact.FeasibleKCluster(ki, 1<<32) {
					return nil, fmt.Errorf("facloc: C(%d,%d) center sets exceed the enumeration budget", ki.N, ki.K)
				}
				return exact.KClusterOPT(pc, ki, core.KObjective(obj)), nil
			},
		})
	}

	// Composed coreset entries ride on the solvers registered above.
	registerSketched()
	registerMPC()
}
