// Command faclocsolve solves JSON instances (see faclocgen) with any solver
// registered in the facloc solver registry.
//
// Single instance (pretty-printed report):
//
//	faclocsolve -solver pd-par [-eps 0.3] [-seed 0] [-timeout 5s] inst.json
//	faclocsolve -solver kcenter kinst.json
//
// -trace FILE additionally writes the solve's round-level trace — one event
// per greedy round, primal-dual τ-barrier, or coreset build phase, with
// work/span deltas — as JSON (single-solve mode only; tracing never changes
// the solution):
//
//	faclocsolve -solver greedy-par -trace rounds.json inst.json
//
// Batch mode (newline-delimited JSON instances in, NDJSON results out,
// solved concurrently by a worker pool; output is identical for any -jobs):
//
//	faclocgen -count 200 | faclocsolve -solver greedy-par -jobs 8 -seed 42
//
// Point-form instances (faclocgen -huge) decode to lazy point-backed
// instances and route through the sketch path: pick a *-coreset solver and
// no distance matrix is ever materialized. Dense-path solvers densify small
// point instances on demand and refuse ones past the safety limit:
//
//	faclocgen -huge -kind kmed -n 1000000 -k 50 | faclocsolve -solver kmedian-coreset
//
// Beyond-RAM instances: -mpc streams the point-form input through the
// internal/mpc chunker → composable coreset tree under a per-component
// memory budget, and prints the machine-readable MPCReport JSON (composed
// guarantee, chunk/round counts, observed peak bytes):
//
//	faclocgen -huge -kind kmed -n 100000000 -k 50 | faclocsolve -mpc -solver kmedian -budget 256MiB
//
// Client mode: -addr sends the NDJSON instance stream to a running faclocd
// daemon's POST /batch instead of solving in-process. The daemon emits
// results in input order through the same encoder, so output is
// byte-identical to a local -jobs run (and repeated submissions hit the
// daemon's solution cache). Against a daemon started with -data-dir that
// byte-identity survives daemon restarts: a warm-restarted faclocd replays
// previously solved work from its durable store without re-solving:
//
//	faclocgen -count 200 | faclocsolve -addr localhost:8649 -solver greedy-par -seed 42
//
// -addr may be a comma-separated seed list of cluster members: each seed is
// asked for GET /cluster/ring until one answers, dead seeds are skipped,
// and the workload goes to the first alive ring member (any member serves
// any request — routing is internal to the cluster).
//
// Discovery:
//
//	faclocsolve -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	facloc "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	solver := flag.String("solver", "pd-par", "registered solver name (see -list)")
	algo := flag.String("algo", "", "deprecated alias for -solver")
	eps := flag.Float64("eps", 0.3, "slack parameter ε")
	seed := flag.Int64("seed", 0, "random seed (batch: master seed for splitmix64 derivation)")
	workers := flag.Int("workers", 0, "goroutine fan-out per solve (0 = GOMAXPROCS; batch: 1)")
	track := flag.Bool("track", true, "track PRAM work/span")
	timeout := flag.Duration("timeout", 0, "per-solve deadline (0 = none)")
	jobs := flag.Int("jobs", 0, "batch mode: solve a NDJSON instance stream with this many concurrent jobs")
	denseLimit := flag.Int("dense-limit", 0, "lazy->dense materialization cap per solve (0 = library default)")
	addr := flag.String("addr", "", "client mode: submit the NDJSON instance stream to a faclocd daemon (host:port, or a comma-separated cluster seed list)")
	tracePath := flag.String("trace", "", "single-solve mode: write the solve's per-round trace events to this JSON file")
	mpcMode := flag.Bool("mpc", false, "stream a point-form instance through the beyond-RAM coreset tree (solver must be, or is made, a *-mpc entry)")
	budget := flag.String("budget", "", "mpc mode: per-component memory budget (e.g. 256MiB, 1G; empty = unbounded)")
	chunkPoints := flag.Int("chunk-points", 0, "mpc mode: points per chunk (0 = budget-derived or library default)")
	coresetSize := flag.Int("coreset-size", 0, "mpc mode: members per coreset node (0 = auto)")
	list := flag.Bool("list", false, "list registered solvers and exit")
	flag.Parse()

	if *list {
		listSolvers()
		return
	}
	name := *solver
	if *algo != "" {
		name = *algo
	}
	// Legacy -algo spellings that predate the registry.
	if legacy, ok := map[string]string{
		"kopt-median": "k-median-opt",
		"kopt-center": "k-center-opt",
	}[name]; ok {
		name = legacy
	}

	o := facloc.Options{Epsilon: *eps, Seed: *seed, Workers: *workers, TrackCost: *track, DenseLimit: *denseLimit}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: faclocsolve -solver <name> [instance.json]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	if *mpcMode {
		runMPC(name, in, o, *timeout, *budget, *chunkPoints, *coresetSize)
		return
	}
	if *addr != "" {
		runRemote(discover(*addr), name, in, o, *jobs, *timeout)
		return
	}
	if *jobs > 0 {
		runBatch(name, in, o, *jobs, *timeout)
		return
	}
	runSingle(name, in, o, *timeout, *tracePath)
}

// discover resolves -addr, which may be a comma-separated seed list of
// cluster members: each seed is asked for GET /cluster/ring until one
// answers. A 200 picks the first alive member (every daemon in the ring can
// serve any request — requests route internally); a 404 means the seed is a
// plain single-node daemon, used directly. Seeds that refuse the connection
// are skipped, so a partly-down seed list still finds the cluster.
func discover(addrs string) string {
	seeds := strings.Split(addrs, ",")
	client := &http.Client{Timeout: 5 * time.Second}
	var last error
	for _, seed := range seeds {
		seed = strings.TrimSpace(seed)
		if seed == "" {
			continue
		}
		resp, err := client.Get("http://" + seed + "/cluster/ring")
		if err != nil {
			last = err
			continue
		}
		var ring struct {
			Self    string `json:"self"`
			Members []struct {
				Addr  string `json:"addr"`
				Alive bool   `json:"alive"`
			} `json:"members"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ring)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return seed // not clustered: a plain daemon
		}
		if resp.StatusCode != http.StatusOK || err != nil {
			last = fmt.Errorf("seed %s: ring status %s", seed, resp.Status)
			continue
		}
		for _, m := range ring.Members {
			if m.Alive {
				fmt.Fprintf(os.Stderr, "faclocsolve: discovered %d-member ring via %s, using %s\n",
					len(ring.Members), seed, m.Addr)
				return strings.TrimPrefix(m.Addr, "http://")
			}
		}
		last = fmt.Errorf("seed %s: ring has no alive members", seed)
	}
	if last != nil && len(seeds) > 1 {
		fatal(fmt.Errorf("no reachable cluster member in %s: %w", addrs, last))
	}
	return strings.TrimSpace(seeds[0]) // single unreachable seed: let /batch report it
}

// runRemote streams the NDJSON instances to a faclocd daemon's POST /batch
// and copies the NDJSON result stream to stdout. The daemon emits results
// in input order through the same encoder local batch mode uses, so the
// output is byte-identical to `faclocsolve -jobs` run locally.
func runRemote(addr, solver string, r io.Reader, o facloc.Options, jobs int, timeout time.Duration) {
	q := url.Values{}
	q.Set("solver", solver)
	q.Set("seed", strconv.FormatInt(o.Seed, 10))
	q.Set("eps", strconv.FormatFloat(o.Epsilon, 'g', -1, 64))
	if jobs > 0 {
		q.Set("jobs", strconv.Itoa(jobs))
	}
	if o.Workers > 0 {
		q.Set("workers", strconv.Itoa(o.Workers))
	}
	if o.DenseLimit > 0 {
		q.Set("dense_limit", strconv.Itoa(o.DenseLimit))
	}
	if timeout > 0 {
		q.Set("timeout_ms", strconv.FormatInt(timeout.Milliseconds(), 10))
	}
	resp, err := http.Post("http://"+addr+"/batch?"+q.Encode(), "application/x-ndjson", r)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("daemon at %s: %s: %s", addr, resp.Status, string(body)))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fatal(fmt.Errorf("result stream from %s aborted: %w", addr, err))
	}
	fmt.Fprintf(os.Stderr, "faclocsolve: remote batch complete (%s via %s)\n", solver, addr)
}

// runMPC streams a point-form instance (faclocgen -huge on stdin, or a file)
// through the beyond-RAM chunker → coreset tree → inner solve pipeline and
// prints the MPCReport as JSON — the machine-readable form the CI budget
// smoke asserts on. The instance is never materialized: peak memory follows
// the -budget, not the stream size.
func runMPC(name string, r io.Reader, o facloc.Options, timeout time.Duration, budget string, chunkPoints, coresetSize int) {
	if !strings.HasSuffix(name, "-mpc") {
		name += "-mpc"
	}
	mo := facloc.MPCOptions{ChunkPoints: chunkPoints, CoresetSize: coresetSize}
	if budget != "" {
		b, err := facloc.ParseByteSize(budget)
		if err != nil {
			fatal(err)
		}
		mo.BudgetBytes = b
	}
	ctx, cancel := solveCtx(timeout)
	defer cancel()
	rep, err := facloc.SolveMPCStream(ctx, name, r, o, mo)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"faclocsolve: mpc %s: n=%d chunks=%d rounds=%d peak=%dB merge=%dB estimate=%.4f\n",
		rep.Solver, rep.N, rep.Chunks, rep.Rounds, rep.PeakBytes, rep.MergeBytes, rep.Estimate)
}

func listSolvers() {
	fmt.Println("facility-location solvers:")
	for _, s := range facloc.Solvers() {
		fmt.Printf("  %-18s %s\n", s.Name(), s.Guarantee())
	}
	fmt.Println("k-clustering solvers:")
	for _, s := range facloc.KSolvers() {
		fmt.Printf("  %-18s [%s] %s\n", s.Name(), s.Objective(), s.Guarantee())
	}
}

func solveCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

func runSingle(name string, r io.Reader, o facloc.Options, timeout time.Duration, tracePath string) {
	ctx, cancel := solveCtx(timeout)
	defer cancel()

	var rec *obs.Recorder
	if tracePath != "" {
		rec = &obs.Recorder{}
		o.Trace = rec
	}
	writeTrace := func(solver string) {
		if rec == nil {
			return
		}
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Solver string          `json:"solver"`
			Rounds int             `json:"rounds"`
			Events []obs.SpanEvent `json:"events"`
		}{solver, rec.Rounds(), rec.Events()}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "faclocsolve: wrote %d trace events to %s\n", rec.Len(), tracePath)
	}

	if _, ok := facloc.Lookup(name); ok {
		in, err := core.ReadInstance(r)
		if err != nil {
			fatal(err)
		}
		rep, err := facloc.Solve(ctx, name, in, o)
		if err != nil {
			fatal(err)
		}
		writeTrace(rep.Solver)
		sol := rep.Solution
		backing := "dense"
		if in.Points != nil {
			backing = "points"
		}
		fmt.Printf("solver:           %s\n", rep.Solver)
		fmt.Printf("guarantee:        %s\n", rep.Guarantee)
		fmt.Printf("instance:         %d facilities x %d clients (m=%d, %s)\n", in.NF, in.NC, in.M(), backing)
		fmt.Printf("open facilities:  %v\n", sol.Open)
		fmt.Printf("facility cost:    %.4f\n", sol.FacilityCost)
		fmt.Printf("connection cost:  %.4f\n", sol.ConnectionCost)
		fmt.Printf("total cost:       %.4f\n", sol.Cost())
		printStats(rep.Stats)
		return
	}
	if ks, ok := facloc.LookupK(name); ok {
		ki, err := core.ReadKInstance(r)
		if err != nil {
			fatal(err)
		}
		rep, err := facloc.SolveKWith(ctx, ks, ki, o)
		if err != nil {
			fatal(err)
		}
		writeTrace(rep.Solver)
		backing := "dense"
		if ki.Points != nil {
			backing = "points"
		}
		fmt.Printf("solver:    %s\n", rep.Solver)
		fmt.Printf("guarantee: %s\n", rep.Guarantee)
		fmt.Printf("instance:  n=%d k=%d (%s)\n", ki.N, ki.K, backing)
		fmt.Printf("centers:   %v\n", rep.Solution.Centers)
		fmt.Printf("objective: %s = %.4f\n", rep.Solution.Obj, rep.Solution.Value)
		printStats(rep.Stats)
		return
	}
	fatal(fmt.Errorf("unknown solver %q (use -list)", name))
}

// runBatch solves an NDJSON instance stream locally, emitting the same
// serve.BatchLine NDJSON records the faclocd /batch endpoint streams — one
// encoder for both paths is what keeps -addr output byte-identical.
func runBatch(name string, r io.Reader, o facloc.Options, jobs int, timeout time.Duration) {
	s, ok := facloc.Lookup(name)
	if !ok {
		fatal(fmt.Errorf("batch mode needs a facility-location solver, %q is not one (use -list)", name))
	}
	b := facloc.NewBatch(s, facloc.BatchOptions{
		Jobs:       jobs,
		Timeout:    timeout,
		MasterSeed: o.Seed,
		Base:       o,
	})
	solved, failed, err := serve.WriteBatch(context.Background(), b, facloc.NewInstanceStream(r), os.Stdout)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "faclocsolve: %d solved, %d failed (%s, jobs=%d)\n", solved, failed, name, jobs)
}

func printStats(s facloc.Stats) {
	if s.Work > 0 {
		fmt.Printf("PRAM work/span:   %d / %d (%d primitive calls)\n", s.Work, s.Span, s.Calls)
	}
	fmt.Printf("wall time:        %v\n", s.WallTime)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faclocsolve:", err)
	os.Exit(1)
}
