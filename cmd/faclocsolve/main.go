// Command faclocsolve solves a JSON instance (see faclocgen) with any of the
// implemented algorithms and prints the cost breakdown and solver stats.
//
// Usage:
//
//	faclocsolve -algo greedy-par|greedy-seq|pd-par|pd-seq|lp-round|opt  inst.json
//	faclocsolve -algo kcenter|kcenter-gonzalez|kmedian|kmeans|kmedian-2swap [-opt] kinst.json
package main

import (
	"flag"
	"fmt"
	"os"

	facloc "repro"
	"repro/internal/core"
)

func main() {
	algo := flag.String("algo", "pd-par", "algorithm")
	eps := flag.Float64("eps", 0.3, "slack parameter ε")
	seed := flag.Int64("seed", 0, "random seed")
	workers := flag.Int("workers", 0, "goroutine fan-out (0 = GOMAXPROCS)")
	track := flag.Bool("track", true, "track PRAM work/span")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: faclocsolve -algo <name> <instance.json>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	o := facloc.Options{Epsilon: *eps, Seed: *seed, Workers: *workers, TrackCost: *track}

	switch *algo {
	case "greedy-par", "greedy-seq", "pd-par", "pd-seq", "lp-round", "opt":
		in, err := core.ReadInstance(f)
		if err != nil {
			fatal(err)
		}
		var r *facloc.Result
		var lpVal float64
		switch *algo {
		case "greedy-par":
			r = facloc.GreedyParallel(in, o)
		case "greedy-seq":
			r = facloc.GreedySequential(in, o)
		case "pd-par":
			r = facloc.PrimalDualParallel(in, o)
		case "pd-seq":
			r = facloc.PrimalDualSequential(in, o)
		case "lp-round":
			r, lpVal, err = facloc.LPRound(in, o)
			if err != nil {
				fatal(err)
			}
		case "opt":
			r = facloc.OptimalFacility(in, o)
		}
		sol := r.Solution
		fmt.Printf("algorithm:        %s\n", *algo)
		fmt.Printf("instance:         %d facilities x %d clients (m=%d)\n", in.NF, in.NC, in.M())
		fmt.Printf("open facilities:  %v\n", sol.Open)
		fmt.Printf("facility cost:    %.4f\n", sol.FacilityCost)
		fmt.Printf("connection cost:  %.4f\n", sol.ConnectionCost)
		fmt.Printf("total cost:       %.4f\n", sol.Cost())
		if lpVal > 0 {
			fmt.Printf("LP lower bound:   %.4f (ratio %.4f)\n", lpVal, sol.Cost()/lpVal)
		}
		if dv := r.DualValue(); dv > 0 && r.DualFeasibility(in, 1) <= 1e-6 {
			fmt.Printf("dual lower bound: %.4f (certified ratio <= %.4f)\n", dv, sol.Cost()/dv)
		}
		printStats(r.Stats)
	case "kcenter", "kcenter-gonzalez", "kmedian", "kmeans", "kmedian-2swap", "kopt-median", "kopt-center":
		ki, err := core.ReadKInstance(f)
		if err != nil {
			fatal(err)
		}
		var r *facloc.KResult
		switch *algo {
		case "kcenter":
			r = facloc.KCenterParallel(ki, o)
		case "kcenter-gonzalez":
			r = facloc.KCenterGreedy(ki, o)
		case "kmedian":
			r = facloc.KMedianLocalSearch(ki, o)
		case "kmeans":
			r = facloc.KMeansLocalSearch(ki, o)
		case "kmedian-2swap":
			r = facloc.KMedianLocalSearch2Swap(ki, o)
		case "kopt-median":
			r = facloc.OptimalKCluster(ki, facloc.KMedian, o)
		case "kopt-center":
			r = facloc.OptimalKCluster(ki, facloc.KCenter, o)
		}
		fmt.Printf("algorithm: %s\n", *algo)
		fmt.Printf("instance:  n=%d k=%d\n", ki.N, ki.K)
		fmt.Printf("centers:   %v\n", r.Solution.Centers)
		fmt.Printf("objective: %s = %.4f\n", r.Solution.Obj, r.Solution.Value)
		printStats(r.Stats)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

func printStats(s facloc.Stats) {
	fmt.Printf("rounds:           %d (inner %d, fallbacks %d)\n", s.Rounds, s.InnerRounds, s.Fallbacks)
	if s.Work > 0 {
		fmt.Printf("PRAM work/span:   %d / %d (%d primitive calls)\n", s.Work, s.Span, s.Calls)
	}
	fmt.Printf("wall time:        %v\n", s.WallTime)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faclocsolve:", err)
	os.Exit(1)
}
