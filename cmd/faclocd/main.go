// Command faclocd is the facility-location daemon: a long-running HTTP +
// NDJSON service over the solver registry, with a content-addressed
// instance store, a solution cache whose hits return byte-identical
// reports without re-solving, an admission-controlled solve queue, and a
// high-QPS assignment query path over cached solutions.
//
// Start it, submit an instance, solve, query:
//
//	faclocd -addr :8649 &
//	hash=$(faclocgen -nf 8 -nc 40 | curl -s --data-binary @- localhost:8649/instances | jq -r .hash)
//	id=$(curl -s -d '{"hash":"'$hash'","solver":"pd-par","seed":7}' localhost:8649/solve | jq -r .id)
//	curl -s "localhost:8649/solutions/$id/assign?client=3"
//
// Batch NDJSON workloads stream through POST /batch — or transparently via
// `faclocsolve -addr host:port`, whose output is byte-identical to a local
// `faclocsolve -jobs` run. GET /metrics exposes the full Prometheus text
// page: cache and admission counters, solve/query/batch latency histograms,
// queue-depth and inflight gauges, and Go runtime stats. Every cache-miss
// solve records a round-level trace into a bounded flight recorder behind
// GET /debug/solves, keyed by the X-Facloc-Trace id echoed on each /solve
// response. SIGTERM/SIGINT drain gracefully: queued solves fail fast,
// in-flight solves finish (up to -drain-timeout), then the process exits.
//
// With -data-dir the daemon is durable: instances and solutions write
// through to a crash-safe content-addressed store (one fsynced file per
// content address), and a restart pointed at the same directory comes back
// warm — previously solved requests are cache hits replaying byte-identical
// reports. Files damaged by a crash are quarantined loudly at startup,
// never trusted and never silently deleted:
//
//	faclocd -addr :8649 -data-dir /var/lib/faclocd &
//
// Cluster mode: start N daemons with the same -peers list (each naming
// itself via -self) and they form a consistent-hash ring — instances route
// to the shard owning their content address, solutions replicate to
// -replicas shards, /healthz probes heal the ring around dead members, and
// the pd-dist solver runs the primal-dual rounds distributed across all
// shards with bitwise-identical results:
//
//	peers=127.0.0.1:8651,127.0.0.1:8652,127.0.0.1:8653
//	for p in 8651 8652 8653; do
//	  faclocd -addr 127.0.0.1:$p -self 127.0.0.1:$p -peers $peers &
//	done
//
// With -debug-addr a second listener serves net/http/pprof under
// /debug/pprof/ — kept off the service port so profiling endpoints are
// never exposed to solve traffic:
//
//	faclocd -addr :8649 -debug-addr 127.0.0.1:8650 &
//	go tool pprof http://127.0.0.1:8650/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/resilience"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8649", "listen address")
	debugAddr := flag.String("debug-addr", "", "pprof listener address (empty = disabled); serves /debug/pprof/ only")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, or error")
	inflight := flag.Int("inflight", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max waiting solves before 503 (0 = 4x inflight)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes (0 = 64 MiB)")
	denseLimit := flag.Int("dense-limit", 0, "default lazy->dense materialization cap (0 = library default; per-request dense_limit overrides)")
	timeout := flag.Duration("timeout", 0, "default per-solve deadline (0 = none; per-request timeout_ms overrides)")
	maxInstances := flag.Int("max-instances", 0, "instance store cap, FIFO eviction (0 = 4096)")
	maxSolutions := flag.Int("max-solutions", 0, "solution cache cap, FIFO eviction (0 = 4096)")
	batchJobs := flag.Int("batch-jobs", 0, "max worker-pool width per /batch request (0 = inflight)")
	dataDir := flag.String("data-dir", "", "durable store directory: write-through persistence and warm restarts (empty = memory-only)")
	flightSize := flag.Int("flight-size", 0, "solve traces kept for GET /debug/solves (0 = 64)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM before in-flight solves are cancelled")
	peers := flag.String("peers", "", "comma-separated cluster member addresses, identical on every shard (empty = single-node)")
	self := flag.String("self", "", "this shard's advertised address; must appear in -peers")
	replicas := flag.Int("replicas", 0, "shards holding each solution entry (0 = 2)")
	healthEvery := flag.Duration("health-interval", 0, "peer liveness probe period (0 = 2s)")
	peerTimeout := flag.Duration("peer-attempt-timeout", 0, "per-attempt cap on one peer HTTP call (0 = 2s; the caller's deadline budget can only shrink it)")
	peerAttempts := flag.Int("peer-attempts", 0, "attempts per retryable peer call, deterministic backoff between them (0 = 3)")
	breakerWindow := flag.Int("breaker-window", 0, "peer-call outcomes in each circuit breaker's sliding window (0 = 10)")
	breakerThreshold := flag.Float64("breaker-threshold", 0, "windowed failure rate that trips a peer's breaker open (0 = 0.5)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker hold time before a half-open probe (0 = 5s)")
	replBudget := flag.Duration("replication-budget", 0, "deadline budget for background replication sweeps (0 = 5s)")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fatal(err)
	}

	srv, err := serve.New(serve.Config{
		MaxInflight:    *inflight,
		MaxQueue:       *queue,
		MaxBody:        *maxBody,
		DenseLimit:     *denseLimit,
		DefaultTimeout: *timeout,
		MaxInstances:   *maxInstances,
		MaxSolutions:   *maxSolutions,
		BatchJobs:      *batchJobs,
		DataDir:        *dataDir,
		Logger:         logger,
		FlightSize:     *flightSize,
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		logger.Info("durable store open", "dir", *dataDir)
	}
	if *peers != "" {
		if err := srv.EnableCluster(serve.ClusterConfig{
			Self:           *self,
			Peers:          splitPeers(*peers),
			Replicas:       *replicas,
			HealthInterval: *healthEvery,
			Resilience: resilience.Policy{
				AttemptTimeout: *peerTimeout,
				Attempts:       *peerAttempts,
				Breaker: resilience.BreakerConfig{
					Window:    *breakerWindow,
					Threshold: *breakerThreshold,
					Cooldown:  *breakerCooldown,
				},
			},
			ReplicationBudget: *replBudget,
		}); err != nil {
			fatal(err)
		}
	}
	if *debugAddr != "" {
		// The pprof handlers live on http.DefaultServeMux (the blank
		// net/http/pprof import registers them); the debug listener serves
		// that mux, keeping profiling off the service port entirely.
		go func() {
			logger.Info("pprof listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	logger.Info("draining", "budget", drain.String())
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Solve-queue drain first (queued work fails fast, in-flight work
	// finishes), then the HTTP listener so response writes complete.
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Warn("drain budget exceeded, in-flight solves cancelled", "err", err)
	}
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	logger.Info("stopped")
}

// newLogger builds the daemon's structured logger: text records on stderr,
// at the requested level.
func newLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("faclocd: bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "faclocd:", err)
	os.Exit(1)
}
