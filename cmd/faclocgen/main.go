// Command faclocgen generates facility-location and k-clustering instances
// as JSON, for use with faclocsolve.
//
// One instance:
//
//	faclocgen -kind ufl  -family uniform|clustered|zipf -nf 16 -nc 64 -seed 1 [-o inst.json]
//	faclocgen -kind kmed -n 64 -k 4 -seed 1 [-o inst.json]
//
// A workload: -count N emits N newline-delimited instances whose seeds are
// derived splitmix64-style from -seed, the stream format `faclocsolve -jobs`
// consumes:
//
//	faclocgen -count 200 -seed 42 | faclocsolve -solver pd-par -jobs 8
//
// Huge instances: -huge streams point-form NDJSON (coordinates only, no
// distance matrix) generated coordinate-by-coordinate through a reused
// buffer — constant memory and no per-record allocation, so 100M-point
// streams are fine. Solve them with the *-coreset solvers, or beyond RAM
// with faclocsolve -mpc:
//
//	faclocgen -huge -kind kmed -n 1000000 -k 50 | faclocsolve -solver kmedian-coreset
//	faclocgen -huge -kind ufl -nf 500 -nc 1000000 | faclocsolve -solver greedy-coreset
//	faclocgen -huge -kind kmed -n 100000000 -k 50 | faclocsolve -mpc -solver kmedian -budget 256MiB
//
// -stats reports generation throughput (instances, bytes, wall time) on
// stderr, useful when sizing huge streaming workloads.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	facloc "repro"
	"repro/internal/core"
	"repro/internal/metric"
)

func main() {
	kind := flag.String("kind", "ufl", "instance kind: ufl | kmed")
	family := flag.String("family", "uniform", "ufl family: uniform | clustered | zipf")
	nf := flag.Int("nf", 16, "facilities (ufl)")
	nc := flag.Int("nc", 64, "clients (ufl)")
	n := flag.Int("n", 64, "nodes (kmed)")
	k := flag.Int("k", 4, "budget (kmed)")
	seed := flag.Int64("seed", 1, "random seed (with -count: master seed)")
	count := flag.Int("count", 1, "number of instances to emit (newline-delimited)")
	huge := flag.Bool("huge", false, "emit point-form instances (no distance matrix; for *-coreset solvers)")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "report instances, bytes, and wall time on stderr")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *count < 1 {
		fatal(fmt.Errorf("-count %d: need at least one instance", *count))
	}
	cw := &countWriter{w: w}
	w = cw
	start := time.Now()

	// The huge path streams records point-by-point through one reused
	// writer; it never materializes an instance (see stream.go).
	var hw *hugeWriter
	if *huge {
		hw = newHugeWriter(w)
	}

	for i := 0; i < *count; i++ {
		s := *seed
		if *count > 1 {
			s = facloc.DeriveSeed(*seed, i)
		}
		switch *kind {
		case "ufl":
			if *huge {
				if err := hw.writeUFL(s, *nf, *nc); err != nil {
					fatal(err)
				}
				continue
			}
			in, err := genUFL(*family, s, *nf, *nc)
			if err != nil {
				fatal(err)
			}
			if err := core.WriteInstance(w, in); err != nil {
				fatal(err)
			}
		case "kmed":
			if *huge {
				if err := hw.writeK(s, *n, *k); err != nil {
					fatal(err)
				}
				continue
			}
			rng := rand.New(rand.NewSource(s))
			ki := core.KFromSpace(nil, metric.GaussianClusters(nil, rng, *n, *k, 2, 100, 2), *k)
			if err := core.WriteKInstance(w, ki); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown kind %q", *kind))
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "faclocgen: %d instance(s), %d bytes, %s\n",
			*count, cw.n, time.Since(start).Round(time.Microsecond))
	}
}

// countWriter tracks bytes written for the -stats report.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func genUFL(family string, seed int64, nf, nc int) (*core.Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	fac := make([]int, nf)
	cli := make([]int, nc)
	for i := range fac {
		fac[i] = i
	}
	for j := range cli {
		cli[j] = nf + j
	}
	switch family {
	case "uniform":
		sp := metric.UniformBox(nil, rng, nf+nc, 2, 10)
		return core.FromSpace(nil, sp, fac, cli, metric.RandomCosts(nil, rng, nf, 1, 6)), nil
	case "clustered":
		sp := metric.TwoScale(nil, rng, nf+nc, 4, 2, 200)
		return core.FromSpace(nil, sp, fac, cli, metric.UniformCosts(nil, nf, 5)), nil
	case "zipf":
		sp := metric.UniformBox(nil, rng, nf+nc, 2, 10)
		return core.FromSpace(nil, sp, fac, cli, metric.ZipfCosts(nil, rng, nf, 20, 1.1)), nil
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faclocgen:", err)
	os.Exit(1)
}
