package main

import (
	"bufio"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/core"
	"repro/internal/par"
)

// hugeWriter streams point-form instances without materializing them: the
// old -huge path built the full coordinate slab and buffered a JSON encoder
// per line, which for 100M-point streams meant gigabytes of live heap and an
// allocation storm. This writer generates each coordinate on the fly from
// the same counter-based streams the in-memory generators use (so the bytes
// are identical to the old path) and pushes them through one reused
// bufio.Writer and one reused numeric scratch buffer — steady-state
// generation does not allocate per point or per record (pinned by
// TestHugeWriterAllocs).
type hugeWriter struct {
	bw      *bufio.Writer
	scratch []byte    // one numeric token at a time
	centers []float64 // blob centers of the current record
	rng     *rand.Rand
}

func newHugeWriter(w io.Writer) *hugeWriter {
	return &hugeWriter{
		bw:      bufio.NewWriterSize(w, 1<<16),
		scratch: make([]byte, 0, 32),
		rng:     rand.New(rand.NewSource(1)),
	}
}

// int / float append one token; bufio's sticky error makes per-call checks
// unnecessary — the record-level Flush reports the first failure.
func (h *hugeWriter) int(v int) {
	h.scratch = strconv.AppendInt(h.scratch[:0], int64(v), 10)
	h.bw.Write(h.scratch)
}

func (h *hugeWriter) float(v float64) {
	h.scratch = core.AppendFloat(h.scratch[:0], v)
	h.bw.Write(h.scratch)
}

// blobStreams reseeds the record's generator state exactly like
// facloc.GenerateHuge* do: a fresh math/rand stream per seed, two Uint64
// draws for the center and noise streams, blob centers uniform in
// [0, scale]^2.
func (h *hugeWriter) blobStreams(seed int64, blobs int, scale float64) (centerSeed, noiseSeed uint64) {
	h.rng.Seed(seed)
	centerSeed, noiseSeed = h.rng.Uint64(), h.rng.Uint64()
	if cap(h.centers) < blobs*2 {
		h.centers = make([]float64, blobs*2)
	}
	h.centers = h.centers[:blobs*2]
	for i := range h.centers {
		h.centers[i] = par.Unit(centerSeed, i) * scale
	}
	return centerSeed, noiseSeed
}

// coords streams the n Gaussian-blob points of the record: point p belongs
// to blob p%blobs, coordinate d is center + sigma·N(0,1), drawn from the
// (noiseSeed, p·2+d) counter stream — the exact values
// metric.GaussianClusters materializes.
func (h *hugeWriter) coords(noiseSeed uint64, n, blobs int, sigma float64) {
	for p := 0; p < n; p++ {
		base := (p % blobs) * 2
		for d := 0; d < 2; d++ {
			if p|d != 0 {
				h.bw.WriteByte(',')
			}
			h.float(h.centers[base+d] + par.Normal(noiseSeed, p*2+d)*sigma)
		}
	}
}

// writeK streams one point-form k-clustering record, byte-identical to
// core.WriteKInstance(w, facloc.GenerateHugeK(seed, n, k)).
func (h *hugeWriter) writeK(seed int64, n, k int) error {
	blobs := k
	if blobs < 2 {
		blobs = 2
	}
	_, noiseSeed := h.blobStreams(seed, blobs, 1000)
	h.bw.WriteString(`{"n":`)
	h.int(n)
	h.bw.WriteString(`,"k":`)
	h.int(k)
	h.bw.WriteString(`,"points":{"dim":2,"coords":[`)
	h.coords(noiseSeed, n, blobs, 5)
	h.bw.WriteString("]}}\n")
	return h.bw.Flush()
}

// writeUFL streams one point-form UFL record, byte-identical to
// core.WriteInstance(w, facloc.GenerateHugeUFL(seed, nf, nc)): 16 blobs over
// nf+nc points, facilities first, uniform opening cost 25.
func (h *hugeWriter) writeUFL(seed int64, nf, nc int) error {
	_, noiseSeed := h.blobStreams(seed, 16, 1000)
	h.bw.WriteString(`{"nf":`)
	h.int(nf)
	h.bw.WriteString(`,"nc":`)
	h.int(nc)
	h.bw.WriteString(`,"facility_costs":[`)
	for i := 0; i < nf; i++ {
		if i > 0 {
			h.bw.WriteByte(',')
		}
		h.bw.WriteString("25")
	}
	h.bw.WriteString(`],"points":{"dim":2,"coords":[`)
	h.coords(noiseSeed, nf+nc, 16, 5)
	h.bw.WriteString("]}}\n")
	return h.bw.Flush()
}
