package main

import (
	"bytes"
	"io"
	"testing"

	facloc "repro"
	"repro/internal/core"
)

// TestHugeWriterByteIdentity pins the streaming huge path to the old
// materialize-then-encode path byte for byte, so downstream consumers (and
// content-addressed stores keyed on the bytes) see no change.
func TestHugeWriterByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		n, k int
	}{
		{1, 64, 4}, {42, 501, 1}, {7, 200, 17},
	} {
		var want, got bytes.Buffer
		if err := core.WriteKInstance(&want, facloc.GenerateHugeK(tc.seed, tc.n, tc.k)); err != nil {
			t.Fatal(err)
		}
		if err := newHugeWriter(&got).writeK(tc.seed, tc.n, tc.k); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("kmed seed=%d n=%d k=%d: streamed bytes diverge from core.WriteKInstance",
				tc.seed, tc.n, tc.k)
		}
	}
	for _, tc := range []struct {
		seed   int64
		nf, nc int
	}{
		{1, 16, 64}, {23, 25, 600}, {9, 1, 33},
	} {
		var want, got bytes.Buffer
		if err := core.WriteInstance(&want, facloc.GenerateHugeUFL(tc.seed, tc.nf, tc.nc)); err != nil {
			t.Fatal(err)
		}
		if err := newHugeWriter(&got).writeUFL(tc.seed, tc.nf, tc.nc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("ufl seed=%d nf=%d nc=%d: streamed bytes diverge from core.WriteInstance",
				tc.seed, tc.nf, tc.nc)
		}
	}
}

// TestHugeWriterStreamDecodes round-trips a multi-record stream through the
// normal decoder, the way faclocsolve -jobs consumes it.
func TestHugeWriterStreamDecodes(t *testing.T) {
	var buf bytes.Buffer
	hw := newHugeWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := hw.writeK(facloc.DeriveSeed(5, i), 120, 4); err != nil {
			t.Fatal(err)
		}
	}
	dec := core.NewKInstanceDecoder(&buf)
	for i := 0; i < 3; i++ {
		ki, err := dec.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ki.N != 120 || ki.K != 4 || ki.Points == nil {
			t.Fatalf("record %d decoded wrong: n=%d k=%d", i, ki.N, ki.K)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("want EOF after 3 records, got %v", err)
	}
}

// TestHugeWriterAllocs pins the satellite bugfix: steady-state record
// generation must not allocate per point — allocations for a 50× bigger
// record stay identical, and near zero.
func TestHugeWriterAllocs(t *testing.T) {
	hw := newHugeWriter(io.Discard)
	allocs := func(n int) float64 {
		return testing.AllocsPerRun(5, func() {
			if err := hw.writeK(3, n, 4); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := allocs(200), allocs(10000)
	if small != big {
		t.Fatalf("allocations scale with record size: %v for n=200 vs %v for n=10000", small, big)
	}
	if big > 2 {
		t.Fatalf("huge record generation allocates %v times per record, want ≤2", big)
	}
}
