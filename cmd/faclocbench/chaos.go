package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	facloc "repro"
	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/primaldual"
	"repro/internal/resilience/chaos"
)

// runChaos replays a seeded chaos schedule against an in-process virtual
// cluster while quorum puts and distributed solves run between steps, then
// checks the resilience invariants:
//
//   - whole-or-error: every operation either fully succeeds or returns a
//     loud error — never a silent drop, never a partial answer;
//   - byte-identical survival: every acknowledged put is readable from a
//     quorum of shards after the schedule heals, with the exact bytes;
//   - determinism: a post-chaos distributed solve matches the local pd-par
//     reference solver bit for bit;
//   - settle: the fabric's goroutines are gone once the cluster closes.
//
// The run prints a markdown report and returns an error when any invariant
// fails — CI treats that as a gate, and the seed in the report reproduces
// the exact run.
func runChaos(w io.Writer, seed uint64, shards, steps int) error {
	if shards < 3 {
		return fmt.Errorf("faclocbench: chaos needs at least 3 shards for a quorum, got %d", shards)
	}
	baseline := runtime.NumGoroutine()
	vc, err := cluster.NewVirtualCluster(shards, cluster.FaultPlan{Seed: seed, Drop: 0.02, MaxDelay: 2}, 25*time.Millisecond, 4)
	if err != nil {
		return err
	}
	target := chaos.NewVirtualTarget(vc, nil)
	sched := chaos.New(seed, shards, steps)

	fmt.Fprintf(w, "# Chaos run (seed=%d, shards=%d, steps=%d)\n\n", seed, shards, steps)
	fmt.Fprintf(w, "## Schedule\n\n")
	if len(sched.Events) == 0 {
		fmt.Fprintf(w, "(no events — increase -chaos-steps)\n")
	}
	for _, e := range sched.Events {
		fmt.Fprintf(w, "- %s\n", e)
	}

	type put struct {
		key   string
		value []byte
	}
	var acked []put
	var loud []error
	start := time.Now()
	opErrs := chaos.Run(sched, target, func(step int) error {
		src := step % shards
		for target.Dead(src) {
			src = (src + 1) % shards
		}
		key := fmt.Sprintf("chaos-%d", step)
		val := []byte(fmt.Sprintf("value-%d-%d", seed, step))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		ackedN, targets, err := vc.Node(src).PutKeyedQuorum(ctx, key, key, val, 3, 0)
		if err != nil {
			if err.Error() == "" {
				return fmt.Errorf("SILENT failure at step %d — whole-or-error violated", step)
			}
			return err
		}
		if ackedN < targets/2+1 {
			return fmt.Errorf("quorum put claimed success with %d/%d acks", ackedN, targets)
		}
		acked = append(acked, put{key: key, value: val})
		return nil
	})
	loud = append(loud, opErrs...)

	fmt.Fprintf(w, "\n## Operations\n\n")
	fmt.Fprintf(w, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(w, "| steps | %d |\n", steps)
	fmt.Fprintf(w, "| puts acked (quorum) | %d |\n", len(acked))
	fmt.Fprintf(w, "| puts failed loudly | %d |\n", len(loud))
	fmt.Fprintf(w, "| wall | %.2fs |\n", time.Since(start).Seconds())
	st := vc.Fabric.Stats()
	fmt.Fprintf(w, "| frames sent/delivered | %d/%d |\n", st.Sent, st.Delivered)
	fmt.Fprintf(w, "| frames dropped/partitioned | %d/%d |\n", st.Dropped, st.Partitioned)
	for _, e := range loud {
		fmt.Fprintf(w, "\n- loud failure: %v", e)
	}
	fmt.Fprintln(w)

	fail := func(format string, args ...any) error {
		vc.Close()
		fmt.Fprintf(w, "\n**INVARIANT VIOLATED**: %s\n", fmt.Sprintf(format, args...))
		return fmt.Errorf("faclocbench: chaos invariant violated (seed %d): %s", seed, fmt.Sprintf(format, args...))
	}

	if len(acked) == 0 {
		return fail("no put ever succeeded — schedule too hostile to prove survival")
	}
	// Survival: after the schedule heals, every acknowledged put reads back
	// byte-identical from at least a quorum of shards.
	for _, p := range acked {
		holders := 0
		for i := 0; i < shards; i++ {
			v, ok := vc.Node(i).Get(p.key)
			if !ok {
				continue
			}
			if !bytes.Equal(v, p.value) {
				return fail("key %s: shard %d holds %q, want %q", p.key, i, v, p.value)
			}
			holders++
		}
		if holders < 2 {
			return fail("acked key %s survives on %d shards, want >= 2", p.key, holders)
		}
	}

	// Determinism: the healed cluster solves distributed == local, bitwise.
	in := facloc.GenerateUniform(91, 10, 50, 1, 6)
	res, err := vc.Solve(context.Background(), in, &primaldual.Options{Epsilon: 0.1, Seed: 3}, par.Mix64(seed)|1, 2)
	if err != nil {
		return fail("post-chaos distributed solve failed: %v", err)
	}
	ref, err := facloc.Solve(context.Background(), "pd-par", in, facloc.Options{Epsilon: 0.1, Seed: 3})
	if err != nil {
		vc.Close()
		return err
	}
	if math.Float64bits(res.Sol.FacilityCost) != math.Float64bits(ref.Solution.FacilityCost) ||
		math.Float64bits(res.Sol.ConnectionCost) != math.Float64bits(ref.Solution.ConnectionCost) {
		return fail("distributed solve diverges from pd-par: %+v vs %+v", res.Sol, ref.Solution)
	}

	// Settle: closing the fabric leaves no goroutine behind.
	vc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			fmt.Fprintf(w, "\n**INVARIANT VIOLATED**: goroutine leak (%d vs baseline %d)\n",
				runtime.NumGoroutine(), baseline)
			return fmt.Errorf("faclocbench: chaos leaked goroutines (seed %d)", seed)
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Fprintf(w, "\nAll invariants held: whole-or-error, byte-identical survival at quorum, bitwise solve determinism, goroutine settle.\n")
	return nil
}
