package main

// The -mpc sweep: beyond-RAM streaming solves across a points × budget ×
// chunk-count grid, so the cost of tightening the memory budget (deeper
// trees, more composition distortion) and of finer chunking is visible as a
// trajectory in BENCH_history.json alongside the registry and sketch sweeps.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	facloc "repro"
	"repro/internal/core"
)

// runMPCSweep streams point-form k-median instances of growing size through
// the kmedian-mpc coreset tree under each (budget, chunks) cell and records
// one benchRecord per cell. The stream bytes are rendered once per size and
// replayed per cell, so every cell sees the identical instance.
func runMPCSweep(w *os.File, jsonOut bool, history string, full bool, k int, seed int64) error {
	sizes := []int{50_000, 200_000}
	if full {
		sizes = append(sizes, 1_000_000)
	}
	budgets := []struct {
		label string
		bytes int64
	}{
		{"4MiB", 4 << 20},
		{"16MiB", 16 << 20},
	}
	chunkCounts := []int{4, 16}

	fmt.Fprintf(w, "# MPC sweep: kmedian-mpc streaming, k=%d, GOMAXPROCS=%d\n\n", k, runtime.GOMAXPROCS(0))
	fmt.Fprintln(w, "| n | budget | chunks | estimate | rounds | merge | peak | wall |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")

	var records []benchRecord
	for _, n := range sizes {
		var stream bytes.Buffer
		if err := core.WriteKInstance(&stream, facloc.GenerateHugeK(seed, n, k)); err != nil {
			return err
		}
		for _, b := range budgets {
			for _, chunks := range chunkCounts {
				mo := facloc.MPCOptions{ChunkPoints: n / chunks, BudgetBytes: b.bytes}
				start := time.Now()
				rep, err := facloc.SolveMPCStream(context.Background(), "kmedian-mpc",
					bytes.NewReader(stream.Bytes()),
					facloc.Options{Seed: seed, TrackCost: true}, mo)
				if err != nil {
					return fmt.Errorf("kmedian-mpc at n=%d budget=%s chunks=%d: %w", n, b.label, chunks, err)
				}
				wall := time.Since(start)
				fmt.Fprintf(w, "| %d | %s | %d | %.1f | %d | %dB | %dB | %v |\n",
					n, b.label, chunks, rep.Estimate, rep.Rounds, rep.MergeBytes,
					rep.PeakBytes, wall.Round(time.Millisecond))
				records = append(records, benchRecord{
					Solver:    fmt.Sprintf("kmedian-mpc@budget=%s,chunks=%d", b.label, chunks),
					Guarantee: rep.Guarantee.String(), N: n, K: k, Solved: 1,
					MeanCost: rep.Estimate, WallMS: float64(wall.Microseconds()) / 1000,
					Work: rep.Stats.Work, Span: rep.Stats.Span, Rounds: int64(rep.Rounds),
				})
			}
		}
	}
	if jsonOut {
		if err := writeBenchJSON("mpc", records); err != nil {
			return err
		}
	}
	if history != "" {
		return appendHistory(history, "mpc", records)
	}
	return nil
}
