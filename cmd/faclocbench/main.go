// Command faclocbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per paper claim (theorems, lemmas, Figure 1,
// Equation 2), each reporting paper-claimed vs measured values.
//
// Usage:
//
//	faclocbench [-full] [-exp E1,E3] [-o experiments.md]
//
// Without -exp, all fourteen experiments run. -full uses the reference-run
// sizes (minutes); the default quick sizes finish in seconds.
//
// -registry switches to the serving-layer benchmark instead: every
// registered facility-location solver runs over the same generated workload
// through the facloc.Batch engine, reporting throughput and cost:
//
//	faclocbench -registry [-count 64] [-nf 16] [-nc 64] [-jobs 0] [-timeout 1s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	facloc "repro"
	"repro/internal/bench"
	"repro/internal/exact"
)

func main() {
	full := flag.Bool("full", false, "use reference-run sizes (slower)")
	exps := flag.String("exp", "all", "comma-separated experiment ids (E1..E13) or 'all'")
	out := flag.String("o", "", "write markdown to this file instead of stdout")
	registryMode := flag.Bool("registry", false, "benchmark every registered solver through the batch engine")
	count := flag.Int("count", 64, "registry mode: workload size (instances)")
	nf := flag.Int("nf", 16, "registry mode: facilities per instance")
	nc := flag.Int("nc", 64, "registry mode: clients per instance")
	jobs := flag.Int("jobs", 0, "registry mode: pool width (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "registry mode: per-solve deadline")
	masterSeed := flag.Int64("seed", 42, "registry mode: master seed")
	flag.Parse()

	if *registryMode {
		if err := runRegistrySweep(os.Stdout, *count, *nf, *nc, *jobs, *timeout, *masterSeed); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
		return
	}

	sizes := bench.Quick
	label := "quick"
	if *full {
		sizes = bench.Full
		label = "full"
	}

	want := map[string]bool{}
	if *exps != "all" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}

	runners := []struct {
		id  string
		run func(bench.Sizes) *bench.Table
	}{
		{"E1", bench.E1GreedyQuality},
		{"E2", bench.E2SubselectionRounds},
		{"E3", bench.E3PrimalDual},
		{"E4", bench.E4KCenter},
		{"E5", bench.E5LPRounding},
		{"E6", bench.E6LocalSearch},
		{"E7", bench.E7DominatorSets},
		{"E8", bench.E8LPDuality},
		{"E9", bench.E9Primitives},
		{"E10", bench.E10GammaBounds},
		{"E11", bench.E11CrossAlgorithm},
		{"E12", bench.E12EpsilonTradeoff},
		{"E13", bench.E13PSwapAblation},
		{"E14", bench.E14UFLLocalSearch},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Experiment run (%s sizes, GOMAXPROCS=%d, %s)\n\n",
		label, runtime.GOMAXPROCS(0), time.Now().UTC().Format("2006-01-02"))
	start := time.Now()
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t0 := time.Now()
		tb := r.run(sizes)
		fmt.Fprintf(os.Stderr, "%s done in %v\n", r.id, time.Since(t0).Round(time.Millisecond))
		b.WriteString(tb.Format())
		b.WriteString("\n")
	}
	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))

	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(b.String())
}

// runRegistrySweep drives every registered UFL solver over one shared
// workload through facloc.Batch and prints a markdown comparison table.
// Skipped cells (solver errors other than deadline) count as failures.
func runRegistrySweep(w *os.File, count, nf, nc, jobs int, timeout time.Duration, masterSeed int64) error {
	ins := make([]*facloc.Instance, count)
	for i := range ins {
		ins[i] = facloc.GenerateUniform(facloc.DeriveSeed(masterSeed, i), nf, nc, 1, 6)
	}

	fmt.Fprintf(w, "# Registry sweep: %d instances of %dx%d, jobs=%d, timeout=%v, GOMAXPROCS=%d\n\n",
		count, nf, nc, jobs, timeout, runtime.GOMAXPROCS(0))
	fmt.Fprintln(w, "| solver | guarantee | solved | deadline | failed | mean cost | wall | inst/s |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")

	for _, s := range facloc.Solvers() {
		if s.Name() == "opt" && nf > exact.MaxEnumFacilities {
			continue // enumeration infeasible at this width
		}
		b := facloc.NewBatch(s, facloc.BatchOptions{
			Jobs: jobs, Timeout: timeout, MasterSeed: masterSeed,
		})
		start := time.Now()
		solved, deadline, failed := 0, 0, 0
		total := 0.0
		err := b.Run(context.Background(), facloc.SliceSource(ins), func(r facloc.BatchResult) error {
			switch {
			case r.Err == nil:
				solved++
				total += r.Report.Solution.Cost()
			case r.Err == context.DeadlineExceeded:
				deadline++
			default:
				failed++
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("sweeping %s: %w", s.Name(), err)
		}
		wall := time.Since(start)
		mean := 0.0
		if solved > 0 {
			mean = total / float64(solved)
		}
		fmt.Fprintf(w, "| %s | %s | %d | %d | %d | %.3f | %v | %.1f |\n",
			s.Name(), s.Guarantee(), solved, deadline, failed, mean,
			wall.Round(time.Millisecond), float64(count)/wall.Seconds())
	}
	return nil
}
