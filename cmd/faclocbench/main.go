// Command faclocbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per paper claim (theorems, lemmas, Figure 1,
// Equation 2), each reporting paper-claimed vs measured values.
//
// Usage:
//
//	faclocbench [-full] [-exp E1,E3] [-o experiments.md]
//
// Without -exp, all fourteen experiments run. -full uses the reference-run
// sizes (minutes); the default quick sizes finish in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "use reference-run sizes (slower)")
	exps := flag.String("exp", "all", "comma-separated experiment ids (E1..E13) or 'all'")
	out := flag.String("o", "", "write markdown to this file instead of stdout")
	flag.Parse()

	sizes := bench.Quick
	label := "quick"
	if *full {
		sizes = bench.Full
		label = "full"
	}

	want := map[string]bool{}
	if *exps != "all" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}

	runners := []struct {
		id  string
		run func(bench.Sizes) *bench.Table
	}{
		{"E1", bench.E1GreedyQuality},
		{"E2", bench.E2SubselectionRounds},
		{"E3", bench.E3PrimalDual},
		{"E4", bench.E4KCenter},
		{"E5", bench.E5LPRounding},
		{"E6", bench.E6LocalSearch},
		{"E7", bench.E7DominatorSets},
		{"E8", bench.E8LPDuality},
		{"E9", bench.E9Primitives},
		{"E10", bench.E10GammaBounds},
		{"E11", bench.E11CrossAlgorithm},
		{"E12", bench.E12EpsilonTradeoff},
		{"E13", bench.E13PSwapAblation},
		{"E14", bench.E14UFLLocalSearch},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Experiment run (%s sizes, GOMAXPROCS=%d, %s)\n\n",
		label, runtime.GOMAXPROCS(0), time.Now().UTC().Format("2006-01-02"))
	start := time.Now()
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t0 := time.Now()
		tb := r.run(sizes)
		fmt.Fprintf(os.Stderr, "%s done in %v\n", r.id, time.Since(t0).Round(time.Millisecond))
		b.WriteString(tb.Format())
		b.WriteString("\n")
	}
	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))

	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(b.String())
}
