// Command faclocbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per paper claim (theorems, lemmas, Figure 1,
// Equation 2), each reporting paper-claimed vs measured values.
//
// Usage:
//
//	faclocbench [-full] [-exp E1,E3] [-o experiments.md]
//
// Without -exp, all fourteen experiments run. -full uses the reference-run
// sizes (minutes); the default quick sizes finish in seconds.
//
// -registry switches to the serving-layer benchmark instead: every
// registered facility-location solver runs over the same generated workload
// through the facloc.Batch engine, reporting throughput and cost:
//
//	faclocbench -registry [-count 64] [-nf 16] [-nc 64] [-jobs 0] [-timeout 1s]
//
// -sketch runs the direct-vs-coreset sweep: k-median solved directly (dense)
// and through the kmedian-coreset sketch path on growing point sets, so the
// crossover where the coreset pipeline wins is visible. -full extends the
// sweep to a million points (coreset only — dense is infeasible there).
//
// -json additionally writes machine-readable results to BENCH_<mode>.json
// (per-solver wall/work/span/cost) so the perf trajectory is trackable
// across commits; CI uploads the file as an artifact.
//
// -compare old.json new.json diffs two such sweeps solver by solver
// (wall/work/span deltas) and exits non-zero when any solver regressed — the
// perf gate CI runs against the committed baseline (flags before the
// filenames — flag parsing stops at the first positional argument). Two
// gates run side by side: wall clock within -tolerance (generous — wall
// carries scheduler and hardware jitter), and the deterministic work counter
// within -work-tolerance (tight — work is a machine-independent operation
// count, so any growth is a real algorithmic regression, not noise). Rows
// whose baseline recorded no work are skipped by the work gate:
//
//	faclocbench -compare -tolerance 0.2 -work-tolerance 0.05 BENCH_baseline.json BENCH_registry.json
//
// -history FILE appends one dated entry for the run to a JSON trajectory
// file (created on first use), so per-solver wall/work/span — and, for
// round-based solvers, the deterministic round count — is trackable across
// commits. The file is a JSON array of entries:
//
//	[{"date": "2026-08-08", "mode": "registry", "gomaxprocs": 8,
//	  "records": [ ...the same rows BENCH_<mode>.json holds... ]}, ...]
//
// -trace FILE (registry and sketch modes) dumps the per-round trace events
// each solver emitted over its sweep — solver name, phase, round index,
// work/span deltas, live-edge count, facilities opened — as a JSON array of
// {solver, rounds, events} rows, for offline round-structure analysis:
//
//	faclocbench -registry -solvers greedy-par -trace rounds.json
//
// -chaos replays a seeded fault schedule (kills, restarts, partitions, slow
// peers) against an in-process virtual cluster while quorum puts run between
// steps, then checks the resilience invariants: whole-or-error operations,
// byte-identical survival of every acknowledged put, bitwise solve
// determinism after healing, and goroutine settle. Same seed, same run:
//
//	faclocbench -chaos -chaos-seed 7 -chaos-shards 5 -chaos-steps 32
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	facloc "repro"
	"repro/internal/bench"
	"repro/internal/exact"
	"repro/internal/obs"
)

func main() {
	full := flag.Bool("full", false, "use reference-run sizes (slower)")
	exps := flag.String("exp", "all", "comma-separated experiment ids (E1..E13) or 'all'")
	out := flag.String("o", "", "write markdown to this file instead of stdout")
	registryMode := flag.Bool("registry", false, "benchmark every registered solver through the batch engine")
	sketchMode := flag.Bool("sketch", false, "benchmark direct vs coreset k-median on growing point sets")
	mpcMode := flag.Bool("mpc", false, "benchmark beyond-RAM streaming solves across a points × budget × chunks grid")
	jsonOut := flag.Bool("json", false, "also write machine-readable results to BENCH_<mode>.json")
	count := flag.Int("count", 64, "registry mode: workload size (instances)")
	nf := flag.Int("nf", 16, "registry mode: facilities per instance")
	nc := flag.Int("nc", 64, "registry mode: clients per instance")
	solverList := flag.String("solvers", "", "registry mode: comma-separated solver names (default: all registered)")
	k := flag.Int("k", 16, "sketch mode: cluster budget")
	jobs := flag.Int("jobs", 0, "registry mode: pool width (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "registry mode: per-solve deadline")
	masterSeed := flag.Int64("seed", 42, "registry/sketch mode: master seed")
	compareMode := flag.Bool("compare", false, "compare two BENCH json files: faclocbench -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.20, "compare mode: allowed fractional wall-clock regression before failing")
	workTolerance := flag.Float64("work-tolerance", 0.05, "compare mode: allowed fractional regression of the deterministic work counter (rows with no baseline work are skipped)")
	history := flag.String("history", "", "append a dated entry for this run to this JSON trajectory file")
	tracePath := flag.String("trace", "", "registry/sketch mode: write per-round trace events to this JSON file")
	chaosMode := flag.Bool("chaos", false, "replay a seeded chaos schedule against a virtual cluster and check resilience invariants")
	chaosSeed := flag.Uint64("chaos-seed", 7, "chaos mode: schedule seed (same seed replays the same faults)")
	chaosShards := flag.Int("chaos-shards", 5, "chaos mode: virtual cluster size (>= 3)")
	chaosSteps := flag.Int("chaos-steps", 32, "chaos mode: schedule length in steps")
	flag.Parse()

	switch {
	case *chaosMode:
		if err := runChaos(os.Stdout, *chaosSeed, *chaosShards, *chaosSteps); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
		return
	case *compareMode:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "faclocbench: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		ok, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *tolerance, *workTolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	case *registryMode:
		if err := runRegistrySweep(os.Stdout, *jsonOut, *history, *tracePath, *count, *nf, *nc, *jobs, *timeout, *masterSeed, *solverList); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
		return
	case *sketchMode:
		if err := runSketchSweep(os.Stdout, *jsonOut, *history, *tracePath, *full, *k, *masterSeed); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
		return
	case *mpcMode:
		if err := runMPCSweep(os.Stdout, *jsonOut, *history, *full, *k, *masterSeed); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
		return
	}

	sizes := bench.Quick
	label := "quick"
	if *full {
		sizes = bench.Full
		label = "full"
	}

	want := map[string]bool{}
	if *exps != "all" {
		for _, e := range strings.Split(*exps, ",") {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}

	runners := []struct {
		id  string
		run func(bench.Sizes) *bench.Table
	}{
		{"E1", bench.E1GreedyQuality},
		{"E2", bench.E2SubselectionRounds},
		{"E3", bench.E3PrimalDual},
		{"E4", bench.E4KCenter},
		{"E5", bench.E5LPRounding},
		{"E6", bench.E6LocalSearch},
		{"E7", bench.E7DominatorSets},
		{"E8", bench.E8LPDuality},
		{"E9", bench.E9Primitives},
		{"E10", bench.E10GammaBounds},
		{"E11", bench.E11CrossAlgorithm},
		{"E12", bench.E12EpsilonTradeoff},
		{"E13", bench.E13PSwapAblation},
		{"E14", bench.E14UFLLocalSearch},
	}

	type expRecord struct {
		ID     string  `json:"id"`
		WallMS float64 `json:"wall_ms"`
	}
	var expRecords []expRecord

	var b strings.Builder
	fmt.Fprintf(&b, "# Experiment run (%s sizes, GOMAXPROCS=%d, %s)\n\n",
		label, runtime.GOMAXPROCS(0), time.Now().UTC().Format("2006-01-02"))
	start := time.Now()
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t0 := time.Now()
		tb := r.run(sizes)
		wall := time.Since(t0)
		fmt.Fprintf(os.Stderr, "%s done in %v\n", r.id, wall.Round(time.Millisecond))
		expRecords = append(expRecords, expRecord{ID: r.id, WallMS: float64(wall.Microseconds()) / 1000})
		b.WriteString(tb.Format())
		b.WriteString("\n")
	}
	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))

	if *jsonOut {
		if err := writeBenchJSON("experiments", expRecords); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
	}
	if *history != "" {
		if err := appendHistory(*history, "experiments", expRecords); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "faclocbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(b.String())
}

// benchRecord is one machine-readable sweep row (BENCH_<mode>.json).
type benchRecord struct {
	Solver     string  `json:"solver"`
	Guarantee  string  `json:"guarantee"`
	N          int     `json:"n,omitempty"`
	K          int     `json:"k,omitempty"`
	Solved     int     `json:"solved"`
	Deadline   int     `json:"deadline,omitempty"`
	Failed     int     `json:"failed,omitempty"`
	MeanCost   float64 `json:"mean_cost"`
	WallMS     float64 `json:"wall_ms"`
	InstPerSec float64 `json:"inst_per_sec,omitempty"`
	Work       int64   `json:"work,omitempty"`
	Span       int64   `json:"span,omitempty"`
	Rounds     int64   `json:"rounds,omitempty"`
}

// solverTrace is one -trace output row: every round/phase span a solver
// emitted over its sweep, in emission order.
type solverTrace struct {
	Solver string          `json:"solver"`
	Rounds int             `json:"rounds"`
	Events []obs.SpanEvent `json:"events"`
}

func writeTraceJSON(path string, traces []solverTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traces); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// historyEntry is one trajectory point of a -history file: the full record
// set of a single run, stamped with when and under what parallelism it ran.
type historyEntry struct {
	Date       string `json:"date"`
	Mode       string `json:"mode"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Records    any    `json:"records"`
}

// appendHistory appends one dated entry to the JSON-array trajectory file at
// path, creating the file on first use. Existing entries pass through as raw
// bytes, so appending never rewrites (or corrupts) history.
func appendHistory(path, mode string, records any) error {
	var entries []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("parsing history %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	e, err := json.Marshal(historyEntry{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Mode:       mode,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Records:    records,
	})
	if err != nil {
		return err
	}
	entries = append(entries, e)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "appended %s entry #%d to %s\n", mode, len(entries), path)
	return nil
}

func writeBenchJSON(mode string, records any) error {
	name := "BENCH_" + mode + ".json"
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", name)
	return nil
}

// runRegistrySweep drives every registered UFL solver over one shared
// workload through facloc.Batch and prints a markdown comparison table.
// Skipped cells (solver errors other than deadline) count as failures.
func runRegistrySweep(w *os.File, jsonOut bool, history, tracePath string, count, nf, nc, jobs int, timeout time.Duration, masterSeed int64, solverList string) error {
	want := map[string]bool{}
	if solverList != "" {
		for _, name := range strings.Split(solverList, ",") {
			name = strings.TrimSpace(name)
			if _, ok := facloc.Lookup(name); !ok {
				return fmt.Errorf("unknown solver %q in -solvers", name)
			}
			want[name] = true
		}
	}

	ins := make([]*facloc.Instance, count)
	for i := range ins {
		ins[i] = facloc.GenerateUniform(facloc.DeriveSeed(masterSeed, i), nf, nc, 1, 6)
	}

	fmt.Fprintf(w, "# Registry sweep: %d instances of %dx%d, jobs=%d, timeout=%v, GOMAXPROCS=%d\n\n",
		count, nf, nc, jobs, timeout, runtime.GOMAXPROCS(0))
	fmt.Fprintln(w, "| solver | guarantee | solved | deadline | failed | mean cost | wall | inst/s |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")

	var records []benchRecord
	var traces []solverTrace
	for _, s := range facloc.Solvers() {
		if len(want) > 0 && !want[s.Name()] {
			continue
		}
		if s.Name() == "opt" && nf > exact.MaxEnumFacilities {
			continue // enumeration infeasible at this width
		}
		// One recorder per solver, shared by the pool's workers (Recorder is
		// concurrency-safe): rounds feed the history records, full events
		// feed -trace.
		rec := &obs.Recorder{}
		b := facloc.NewBatch(s, facloc.BatchOptions{
			Jobs: jobs, Timeout: timeout, MasterSeed: masterSeed,
			Base: facloc.Options{TrackCost: true, Trace: rec},
		})
		start := time.Now()
		solved, deadline, failed := 0, 0, 0
		total := 0.0
		var work, span int64
		err := b.Run(context.Background(), facloc.SliceSource(ins), func(r facloc.BatchResult) error {
			switch {
			case r.Err == nil:
				solved++
				total += r.Report.Solution.Cost()
				work += r.Report.Stats.Work
				span += r.Report.Stats.Span
			case r.Err == context.DeadlineExceeded:
				deadline++
			default:
				failed++
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("sweeping %s: %w", s.Name(), err)
		}
		wall := time.Since(start)
		mean := 0.0
		if solved > 0 {
			mean = total / float64(solved)
		}
		fmt.Fprintf(w, "| %s | %s | %d | %d | %d | %.3f | %v | %.1f |\n",
			s.Name(), s.Guarantee(), solved, deadline, failed, mean,
			wall.Round(time.Millisecond), float64(count)/wall.Seconds())
		records = append(records, benchRecord{
			Solver: s.Name(), Guarantee: s.Guarantee().String(), N: nc,
			Solved: solved, Deadline: deadline, Failed: failed,
			MeanCost: mean, WallMS: float64(wall.Microseconds()) / 1000,
			InstPerSec: float64(count) / wall.Seconds(),
			Work:       work, Span: span, Rounds: int64(rec.Rounds()),
		})
		if tracePath != "" {
			traces = append(traces, solverTrace{Solver: s.Name(), Rounds: rec.Rounds(), Events: rec.Events()})
		}
	}
	if jsonOut {
		if err := writeBenchJSON("registry", records); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := writeTraceJSON(tracePath, traces); err != nil {
			return err
		}
	}
	if history != "" {
		return appendHistory(history, "registry", records)
	}
	return nil
}

// runCompare diffs two BENCH json sweeps solver by solver and reports
// wall/work/span deltas for every solver present in both. Two gates run side
// by side: wall clock within tolerance (generous — wall carries scheduler and
// hardware jitter), and the work counter within workTolerance (tight — work
// is a deterministic, machine-independent operation count, so growth there is
// an algorithmic regression, not noise, and catching it on work de-flakes the
// gate on loaded CI runners). Rows whose baseline recorded no work predate
// work tracking and are skipped by the work gate.
func runCompare(w *os.File, oldPath, newPath string, tolerance, workTolerance float64) (bool, error) {
	load := func(path string) (map[string]benchRecord, []string, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var recs []benchRecord
		if err := json.Unmarshal(data, &recs); err != nil {
			return nil, nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		m := map[string]benchRecord{}
		var order []string
		for _, r := range recs {
			key := r.Solver
			if r.N > 0 {
				key = fmt.Sprintf("%s@n=%d", r.Solver, r.N)
			}
			if _, dup := m[key]; !dup {
				order = append(order, key)
			}
			m[key] = r
		}
		return m, order, nil
	}
	oldRecs, order, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newRecs, _, err := load(newPath)
	if err != nil {
		return false, err
	}

	pct := func(oldV, newV float64) string {
		if oldV == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(newV-oldV)/oldV)
	}
	ratio := func(oldV, newV float64) string {
		if newV == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2fx", oldV/newV)
	}

	fmt.Fprintf(w, "# Sweep compare: %s -> %s (wall tolerance %.0f%%, work tolerance %.0f%%)\n\n",
		oldPath, newPath, 100*tolerance, 100*workTolerance)
	fmt.Fprintln(w, "| solver | wall old | wall new | speedup | wall Δ | work Δ | span Δ | verdict |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|")

	ok := true
	compared := 0
	for _, key := range order {
		o := oldRecs[key]
		n, found := newRecs[key]
		if !found {
			// A solver that vanished from the new sweep is a named failure,
			// not a silent skip: a deleted/renamed solver must fail the perf
			// gate, or regressions hide behind removals.
			fmt.Fprintf(w, "| %s | %.1fms | - | - | - | - | - | MISSING in %s |\n", key, o.WallMS, newPath)
			ok = false
			continue
		}
		compared++
		verdict := "ok"
		if o.WallMS > 0 && n.WallMS > o.WallMS*(1+tolerance) {
			verdict = "REGRESSED (wall)"
			ok = false
		}
		if o.Work > 0 && float64(n.Work) > float64(o.Work)*(1+workTolerance) {
			verdict = "REGRESSED (work)"
			ok = false
		}
		fmt.Fprintf(w, "| %s | %.1fms | %.1fms | %s | %s | %s | %s | %s |\n",
			key, o.WallMS, n.WallMS, ratio(o.WallMS, n.WallMS), pct(o.WallMS, n.WallMS),
			pct(float64(o.Work), float64(n.Work)), pct(float64(o.Span), float64(n.Span)), verdict)
	}
	if compared == 0 {
		return false, fmt.Errorf("no common solvers between %s and %s", oldPath, newPath)
	}
	if !ok {
		fmt.Fprintf(w, "\nFAIL: regression beyond tolerance (wall %.0f%%, work %.0f%%) or solver missing from new sweep\n",
			100*tolerance, 100*workTolerance)
	}
	return ok, nil
}

// runSketchSweep compares direct k-median (dense path) with the coreset
// sketch path on growing point sets. Direct rows stop where densification
// becomes unreasonable; coreset rows continue to the largest size.
func runSketchSweep(w *os.File, jsonOut bool, history, tracePath string, full bool, k int, seed int64) error {
	directSizes := []int{1000, 2000}
	coresetSizes := []int{1000, 2000, 50_000, 200_000}
	if full {
		coresetSizes = append(coresetSizes, 1_000_000)
	}

	fmt.Fprintf(w, "# Sketch sweep: k-median direct vs coreset, k=%d, GOMAXPROCS=%d\n\n", k, runtime.GOMAXPROCS(0))
	fmt.Fprintln(w, "| n | solver | value | wall | value ratio (coreset/direct) |")
	fmt.Fprintln(w, "|---|---|---|---|---|")

	var records []benchRecord
	var traces []solverTrace
	direct := map[int]float64{}
	run := func(n int, solver string) error {
		ki := facloc.GenerateHugeK(seed, n, k)
		rec := &obs.Recorder{}
		start := time.Now()
		rep, err := facloc.SolveK(context.Background(), solver, ki, facloc.Options{Seed: seed, TrackCost: true, Trace: rec})
		if err != nil {
			return fmt.Errorf("%s at n=%d: %w", solver, n, err)
		}
		wall := time.Since(start)
		ratio := ""
		if solver == "kmedian" {
			direct[n] = rep.Solution.Value
		} else if d, ok := direct[n]; ok && d > 0 {
			ratio = fmt.Sprintf("%.4f", rep.Solution.Value/d)
		}
		fmt.Fprintf(w, "| %d | %s | %.1f | %v | %s |\n",
			n, solver, rep.Solution.Value, wall.Round(time.Millisecond), ratio)
		records = append(records, benchRecord{
			Solver: solver, Guarantee: rep.Guarantee.String(), N: n, K: k, Solved: 1,
			MeanCost: rep.Solution.Value, WallMS: float64(wall.Microseconds()) / 1000,
			Work: rep.Stats.Work, Span: rep.Stats.Span, Rounds: int64(rec.Rounds()),
		})
		if tracePath != "" {
			traces = append(traces, solverTrace{Solver: fmt.Sprintf("%s@n=%d", solver, n), Rounds: rec.Rounds(), Events: rec.Events()})
		}
		return nil
	}
	for _, n := range directSizes {
		if err := run(n, "kmedian"); err != nil {
			return err
		}
	}
	for _, n := range coresetSizes {
		if err := run(n, "kmedian-coreset"); err != nil {
			return err
		}
	}
	if jsonOut {
		if err := writeBenchJSON("sketch", records); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := writeTraceJSON(tracePath, traces); err != nil {
			return err
		}
	}
	if history != "" {
		return appendHistory(history, "sketch", records)
	}
	return nil
}
