package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSweep(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareMissingSolverFails pins the perf-gate bugfix: a solver present
// in the baseline but absent from the new sweep must fail the comparison,
// not silently pass — otherwise deleting a solver hides its regression.
func TestCompareMissingSolverFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSweep(t, dir, "old.json",
		`[{"solver":"greedy-par","solved":1,"mean_cost":1,"wall_ms":10,"work":100},
		  {"solver":"pd-par","solved":1,"mean_cost":1,"wall_ms":10,"work":100}]`)
	newPath := writeSweep(t, dir, "new.json",
		`[{"solver":"greedy-par","solved":1,"mean_cost":1,"wall_ms":10,"work":100}]`)

	sink, err := os.Create(filepath.Join(dir, "out.md"))
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	ok, err := runCompare(sink, oldPath, newPath, 0.2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("compare passed with pd-par missing from the new sweep; want failure")
	}

	// Identical sweeps still pass.
	ok, err = runCompare(sink, oldPath, oldPath, 0.2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("self-compare failed")
	}
}
