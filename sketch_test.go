package facloc

// Acceptance tests for the coreset/sketching subsystem: million-point
// instances solved through the registered *-coreset entries without ever
// materializing a dense distance matrix.

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSketchMillionPointKMedianNoDense is the ISSUE-3 acceptance criterion:
// kmedian-coreset solves a 1,000,000-point synthetic metric.Space instance
// (k=50) on a laptop-class runner, and the dense path is never invoked —
// peak distance storage is O(coreset² + n). Skipped under -race (the
// detector's ~10× slowdown puts the wall time out of CI budget) and -short.
func TestSketchMillionPointKMedianNoDense(t *testing.T) {
	if raceEnabled {
		t.Skip("million-point acceptance test skipped under -race")
	}
	if testing.Short() {
		t.Skip("million-point acceptance test skipped in -short mode")
	}
	const n, k = 1_000_000, 50
	ki := GenerateHugeK(1, n, k)
	if ki.Dist != nil {
		t.Fatal("huge instance must be lazy (no matrix)")
	}
	before := core.DenseBuilds()
	rep, err := SolveK(context.Background(), "kmedian-coreset", ki, Options{Seed: 7})
	if err != nil {
		t.Fatalf("kmedian-coreset on %d points: %v", n, err)
	}
	if got := core.DenseBuilds() - before; got != 0 {
		t.Fatalf("dense path invoked %d times during a sketched solve", got)
	}
	sol := rep.Solution
	if len(sol.Centers) == 0 || len(sol.Centers) > k {
		t.Fatalf("%d centers, budget %d", len(sol.Centers), k)
	}
	for _, ci := range sol.Centers {
		if ci < 0 || ci >= n {
			t.Fatalf("center %d out of range", ci)
		}
	}
	if !(sol.Value > 0) {
		t.Fatalf("objective %v, want > 0", sol.Value)
	}
	if len(sol.Assign) != n {
		t.Fatalf("assignment covers %d of %d points", len(sol.Assign), n)
	}
}

// TestSketchDeterministicAcrossWorkersLarge checks the bitwise determinism
// contract past the sequential grain, where naive float reductions would
// diverge between worker counts.
func TestSketchDeterministicAcrossWorkersLarge(t *testing.T) {
	ki := GenerateHugeK(3, 50_000, 10)
	o1 := Options{Seed: 7, Workers: 1}
	op := Options{Seed: 7, Workers: confWorkers()}
	r1, err := SolveK(context.Background(), "kmedian-coreset", ki, o1)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := SolveK(context.Background(), "kmedian-coreset", ki, op)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Solution, rp.Solution) {
		t.Fatalf("Workers=1 vs Workers=%d solutions differ on 50k points", op.Workers)
	}
}

// TestDensePathRefusesHugeLazyInstance pins the safety valve: a dense-path
// solver asked to densify past core.DenseLimit fails with an error naming
// the coreset alternative instead of attempting the allocation.
func TestDensePathRefusesHugeLazyInstance(t *testing.T) {
	n := core.DenseLimit + 1
	ki := GenerateHugeK(2, n, 5)
	_, err := SolveK(context.Background(), "kmedian", ki, Options{})
	if err == nil || !strings.Contains(err.Error(), "coreset") {
		t.Fatalf("dense solve of %d lazy points: err=%v, want dense-limit refusal", n, err)
	}

	in := GenerateHugeUFL(2, 10, core.DenseLimit+1)
	if _, err := Solve(context.Background(), "greedy-par", in, Options{}); err == nil || !strings.Contains(err.Error(), "coreset") {
		t.Fatalf("dense UFL solve past the limit: err=%v, want refusal", err)
	}
}

// TestSketchedUFLGreedyLift solves a lazy UFL instance through the
// registered greedy-coreset entry and checks the lifted solution is feasible
// on the full instance with the dense path untouched.
func TestSketchedUFLGreedyLift(t *testing.T) {
	in := GenerateHugeUFL(5, 100, 20_000)
	before := core.DenseBuilds()
	rep, err := Solve(context.Background(), "greedy-coreset", in, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := core.DenseBuilds() - before; got != 0 {
		t.Fatalf("dense path invoked %d times during a sketched UFL solve", got)
	}
	if err := rep.Solution.CheckFeasible(in, 1e-6); err != nil {
		t.Fatalf("lifted solution infeasible: %v", err)
	}
}

// TestPointInstanceDecodeRejectsBadShapes pins the decoder's no-panic
// contract on the point form: negative or inconsistent shapes error cleanly.
func TestPointInstanceDecodeRejectsBadShapes(t *testing.T) {
	for _, bad := range []string{
		`{"nf":-1,"nc":3,"facility_costs":[],"points":{"dim":1,"coords":[0,1]}}`,
		`{"nf":2,"nc":-1,"facility_costs":[1,1],"points":{"dim":1,"coords":[0]}}`,
		`{"nf":1,"nc":1,"facility_costs":[1],"points":{"dim":0,"coords":[0,1]}}`,
		`{"nf":1,"nc":1,"facility_costs":[1],"points":{"dim":3,"coords":[0,1]}}`,
		`{"nf":1,"nc":1,"facility_costs":[1],"distance":[[1]],"points":{"dim":1,"coords":[0,1]}}`,
	} {
		if _, err := ReadInstance(strings.NewReader(bad)); err == nil {
			t.Errorf("decoder accepted %s", bad)
		}
	}
	if _, err := ReadKInstance(strings.NewReader(`{"n":2,"k":-1,"points":{"dim":1,"coords":[0,1]}}`)); err == nil {
		t.Error("decoder accepted negative k")
	}
}

// TestPointInstanceRoundTrip pins the point-form wire format: a lazy
// instance survives Write→Read with its backing still lazy.
func TestPointInstanceRoundTrip(t *testing.T) {
	ki := GenerateHugeK(9, 1000, 4)
	var b strings.Builder
	if err := WriteKInstance(&b, ki); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKInstance(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Dist != nil {
		t.Fatal("point-form k-instance decoded to a dense matrix")
	}
	if back.N != ki.N || back.K != ki.K {
		t.Fatalf("round trip changed shape: %d/%d -> %d/%d", ki.N, ki.K, back.N, back.K)
	}

	in := GenerateHugeUFL(9, 8, 120)
	var bu strings.Builder
	if err := WriteInstance(&bu, in); err != nil {
		t.Fatal(err)
	}
	inBack, err := ReadInstance(strings.NewReader(bu.String()))
	if err != nil {
		t.Fatal(err)
	}
	if inBack.D != nil {
		t.Fatal("point-form instance decoded to a dense matrix")
	}
	if inBack.NF != in.NF || inBack.NC != in.NC {
		t.Fatalf("round trip changed shape")
	}
	// Distances must agree between the original and decoded backings.
	for _, pair := range [][2]int{{0, 0}, {3, 7}, {7, 119}} {
		if a, b := in.Dist(pair[0], pair[1]), inBack.Dist(pair[0], pair[1]); a != b {
			t.Fatalf("d(%d,%d) %v != %v after round trip", pair[0], pair[1], a, b)
		}
	}
}
