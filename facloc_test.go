package facloc

import (
	"math"
	"testing"
)

func TestPublicAPIFacilityLocationEndToEnd(t *testing.T) {
	in := GenerateUniform(1, 6, 16, 1, 6)
	opt := OptimalFacility(in, Options{})

	algos := map[string]func() *Result{
		"greedy-parallel": func() *Result { return GreedyParallel(in, Options{Epsilon: 0.3, Seed: 1}) },
		"greedy-seq":      func() *Result { return GreedySequential(in, Options{}) },
		"primal-dual-par": func() *Result { return PrimalDualParallel(in, Options{Epsilon: 0.3, Seed: 1}) },
		"primal-dual-seq": func() *Result { return PrimalDualSequential(in, Options{}) },
	}
	bounds := map[string]float64{
		"greedy-parallel": 3.722 + 0.3,
		"greedy-seq":      1.861,
		"primal-dual-par": 3 + 3*0.3,
		"primal-dual-seq": 3,
	}
	for name, run := range algos {
		r := run()
		if err := r.Solution.CheckFeasible(in, 1e-9); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ratio := r.Solution.Cost() / opt.Solution.Cost()
		if ratio > bounds[name]+1e-9 {
			t.Fatalf("%s: ratio %v > %v", name, ratio, bounds[name])
		}
	}
}

func TestPublicAPILPRound(t *testing.T) {
	in := GenerateUniform(2, 5, 12, 1, 6)
	r, lpVal, err := LPRound(in, Options{Epsilon: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Solution.CheckFeasible(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	if lpVal <= 0 {
		t.Fatalf("LP value %v", lpVal)
	}
	if r.Solution.Cost() > (4+4*0.3)*lpVal+lpVal {
		t.Fatalf("rounded cost %v vs LP %v", r.Solution.Cost(), lpVal)
	}
}

func TestPublicAPIKClustering(t *testing.T) {
	ki := GenerateKUniform(3, 12, 3)
	optCenter := OptimalKCluster(ki, KCenter, Options{})
	optMedian := OptimalKCluster(ki, KMedian, Options{})
	optMeans := OptimalKCluster(ki, KMeans, Options{})

	hs := KCenterParallel(ki, Options{Seed: 3})
	if hs.Solution.Value > 2*optCenter.Solution.Value+1e-9 {
		t.Fatalf("k-center ratio %v", hs.Solution.Value/optCenter.Solution.Value)
	}
	gz := KCenterGreedy(ki, Options{})
	if gz.Solution.Value > 2*optCenter.Solution.Value+1e-9 {
		t.Fatalf("Gonzalez ratio %v", gz.Solution.Value/optCenter.Solution.Value)
	}
	med := KMedianLocalSearch(ki, Options{Epsilon: 0.3, Seed: 3})
	if med.Solution.Value > (5+0.3)*optMedian.Solution.Value+1e-9 {
		t.Fatalf("k-median ratio %v", med.Solution.Value/optMedian.Solution.Value)
	}
	means := KMeansLocalSearch(ki, Options{Epsilon: 0.3, Seed: 3})
	if means.Solution.Value > (81+0.3)*optMeans.Solution.Value+1e-9 {
		t.Fatalf("k-means ratio %v", means.Solution.Value/optMeans.Solution.Value)
	}
}

func TestPublicAPI2Swap(t *testing.T) {
	ki := GenerateKClustered(4, 20, 3)
	r := KMedianLocalSearch2Swap(ki, Options{Epsilon: 0.3, Seed: 4})
	if err := r.Solution.CheckFeasible(ki, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestDualReporting(t *testing.T) {
	in := GenerateUniform(5, 5, 12, 1, 6)
	r := PrimalDualParallel(in, Options{Epsilon: 0.3, Seed: 5})
	if r.Dual == nil {
		t.Fatal("no dual recorded")
	}
	if v := r.DualFeasibility(in, 1); v > 1e-6 {
		t.Fatalf("dual infeasible: %v", v)
	}
	lpVal, err := LPLowerBound(in)
	if err != nil {
		t.Fatal(err)
	}
	dv := r.DualValue()
	if dv > lpVal+1e-6 {
		t.Fatalf("dual value %v above LP %v", dv, lpVal)
	}
	// The dual value is a certified lower bound: cost / dual ≤ 3(1+ε) also
	// certifies the ratio without knowing OPT.
	if r.Solution.Cost() < dv-1e-9 {
		t.Fatalf("cost %v below its own lower bound %v", r.Solution.Cost(), dv)
	}
}

func TestStatsPopulated(t *testing.T) {
	in := GenerateUniform(6, 6, 20, 1, 6)
	r := GreedyParallel(in, Options{Epsilon: 0.3, Seed: 6, TrackCost: true})
	if r.Stats.Work == 0 || r.Stats.Span == 0 {
		t.Fatalf("tracked stats empty: %+v", r.Stats)
	}
	if r.Stats.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if r.Stats.WallTime <= 0 {
		t.Fatal("no wall time")
	}
	r2 := GreedyParallel(in, Options{Epsilon: 0.3, Seed: 6})
	if r2.Stats.Work != 0 {
		t.Fatal("work tracked without TrackCost")
	}
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(nil, nil); err == nil {
		t.Fatal("empty instance accepted")
	}
	if _, err := NewInstance([]float64{1}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	if _, err := NewInstance([]float64{1, 2}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	in, err := NewInstance([]float64{1, 2}, [][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if in.NF != 2 || in.NC != 2 || in.Dist(1, 0) != 3 {
		t.Fatalf("instance mangled: %+v", in)
	}
}

func TestFromPointsRoundTrip(t *testing.T) {
	pts := [][]float64{{0, 0}, {3, 4}, {6, 8}}
	in, err := FromPoints(pts, []int{0}, []int{1, 2}, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(in.Dist(0, 0)-5) > 1e-12 || math.Abs(in.Dist(0, 1)-10) > 1e-12 {
		t.Fatalf("distances wrong: %v %v", in.Dist(0, 0), in.Dist(0, 1))
	}
	if _, err := FromPoints(pts, []int{0, 9}, []int{1}, []float64{1, 1}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := FromPoints([][]float64{{0, 0}, {1}}, []int{0}, []int{1}, []float64{1}); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestNewKInstanceValidation(t *testing.T) {
	if _, err := NewKInstance(nil, 1); err == nil {
		t.Fatal("empty accepted")
	}
	d := [][]float64{{0, 1}, {1, 0}}
	ki, err := NewKInstance(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ki.N != 2 || ki.K != 1 {
		t.Fatalf("%+v", ki)
	}
	if _, err := NewKInstance([][]float64{{0, 1}, {2, 0}}, 1); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestGammaBoundsBracketOPT(t *testing.T) {
	in := GenerateUniform(7, 6, 14, 1, 6)
	lo, hi := GammaBounds(in)
	opt := OptimalFacility(in, Options{})
	if opt.Solution.Cost() < lo-1e-9 || opt.Solution.Cost() > hi+1e-9 {
		t.Fatalf("OPT %v outside [γ=%v, Σγ=%v]", opt.Solution.Cost(), lo, hi)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := GenerateUniform(9, 5, 10, 1, 5)
	b := GenerateUniform(9, 5, 10, 1, 5)
	for k := range a.D.A {
		if a.D.A[k] != b.D.A[k] {
			t.Fatal("GenerateUniform not deterministic")
		}
	}
	ka := GenerateKClustered(9, 15, 3)
	kb := GenerateKClustered(9, 15, 3)
	for k := range ka.Dist.A {
		if ka.Dist.A[k] != kb.Dist.A[k] {
			t.Fatal("GenerateKClustered not deterministic")
		}
	}
}

func TestEpsilonDefaulting(t *testing.T) {
	in := GenerateUniform(10, 4, 8, 1, 4)
	r := GreedyParallel(in, Options{}) // zero options: ε defaults to 0.3
	if err := r.Solution.CheckFeasible(in, 1e-9); err != nil {
		t.Fatal(err)
	}
}
