package facloc

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metric"
)

func seededRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// NewInstance builds a facility-location instance from explicit opening
// costs and an nf×nc facility-to-client distance matrix. The matrix must
// come from an underlying metric on facilities ∪ clients for the
// approximation guarantees to apply (see Instance.CheckBipartiteMetric).
func NewInstance(facilityCosts []float64, dist [][]float64) (*Instance, error) {
	nf := len(facilityCosts)
	if nf == 0 || len(dist) != nf {
		return nil, fmt.Errorf("facloc: %d facilities but %d distance rows", nf, len(dist))
	}
	d, err := metric.FromRows(nil, dist)
	if err != nil {
		return nil, fmt.Errorf("facloc: %w", err)
	}
	in := &Instance{NF: nf, NC: d.C, FacCost: append([]float64(nil), facilityCosts...), D: d}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// FromPoints builds an instance from Euclidean points: facilities[i] and
// clients[j] index rows of points (dim = len(points[0])); costs are the
// opening costs.
func FromPoints(points [][]float64, facilities, clients []int, costs []float64) (*Instance, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("facloc: no points")
	}
	dim := len(points[0])
	coords := make([]float64, 0, len(points)*dim)
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("facloc: point %d has dim %d, want %d", i, len(p), dim)
		}
		coords = append(coords, p...)
	}
	sp := &metric.Euclidean{Dim: dim, Coords: coords}
	for _, i := range append(append([]int(nil), facilities...), clients...) {
		if i < 0 || i >= sp.N() {
			return nil, fmt.Errorf("facloc: point index %d out of range", i)
		}
	}
	if len(costs) != len(facilities) {
		return nil, fmt.Errorf("facloc: %d costs for %d facilities", len(costs), len(facilities))
	}
	in := core.FromSpace(nil, sp, facilities, clients, costs)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// NewKInstance builds a k-clustering instance from a symmetric n×n distance
// matrix and a budget k.
func NewKInstance(dist [][]float64, k int) (*KInstance, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("facloc: empty distance matrix")
	}
	d, err := metric.FromRows(nil, dist)
	if err != nil {
		return nil, fmt.Errorf("facloc: %w", err)
	}
	if d.C != n {
		return nil, fmt.Errorf("facloc: %dx%d matrix is not square", n, d.C)
	}
	ki := &KInstance{N: n, K: k, Dist: d}
	if err := ki.Validate(); err != nil {
		return nil, err
	}
	return ki, nil
}

// KFromPoints builds a k-clustering instance over Euclidean points.
func KFromPoints(points [][]float64, k int) (*KInstance, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("facloc: no points")
	}
	dim := len(points[0])
	coords := make([]float64, 0, len(points)*dim)
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("facloc: point %d has dim %d, want %d", i, len(p), dim)
		}
		coords = append(coords, p...)
	}
	sp := &metric.Euclidean{Dim: dim, Coords: coords}
	ki := core.KFromSpace(nil, sp, k)
	if err := ki.Validate(); err != nil {
		return nil, err
	}
	return ki, nil
}

// ReadInstance deserializes and validates a JSON instance (the format
// cmd/faclocgen emits and WriteInstance produces).
func ReadInstance(r io.Reader) (*Instance, error) { return core.ReadInstance(r) }

// WriteInstance serializes in as JSON.
func WriteInstance(w io.Writer, in *Instance) error { return core.WriteInstance(w, in) }

// ReadKInstance deserializes and validates a JSON k-clustering instance.
func ReadKInstance(r io.Reader) (*KInstance, error) { return core.ReadKInstance(r) }

// WriteKInstance serializes ki as JSON.
func WriteKInstance(w io.Writer, ki *KInstance) error { return core.WriteKInstance(w, ki) }

// InstanceHash returns the content address of in — the hex SHA-256 of its
// canonical wire encoding — the key the serving layer's instance store and
// solution cache are built on.
func InstanceHash(in *Instance) (string, error) { return core.InstanceHash(in) }

// KInstanceHash returns the content address of ki.
func KInstanceHash(ki *KInstance) (string, error) { return core.KInstanceHash(ki) }

// GenerateUniform returns a random instance with nf facilities and nc
// clients uniform in a square, and opening costs uniform in [costLo, costHi].
// Deterministic per seed — the workload of experiments E1/E3/E5.
func GenerateUniform(seed int64, nf, nc int, costLo, costHi float64) *Instance {
	rng := seededRNG(seed)
	sp := metric.UniformBox(nil, rng, nf+nc, 2, 10)
	fac := make([]int, nf)
	cli := make([]int, nc)
	for i := range fac {
		fac[i] = i
	}
	for j := range cli {
		cli[j] = nf + j
	}
	return core.FromSpace(nil, sp, fac, cli, metric.RandomCosts(nil, rng, nf, costLo, costHi))
}

// GenerateClustered returns an instance whose clients form well-separated
// clusters (the two-scale adversarial family of the experiments).
func GenerateClustered(seed int64, nf, nc, clusters int) *Instance {
	rng := seededRNG(seed)
	sp := metric.TwoScale(nil, rng, nf+nc, clusters, 2, 200)
	fac := make([]int, nf)
	cli := make([]int, nc)
	for i := range fac {
		fac[i] = i
	}
	for j := range cli {
		cli[j] = nf + j
	}
	return core.FromSpace(nil, sp, fac, cli, metric.UniformCosts(nil, nf, 5))
}

// GenerateKClustered returns a k-clustering instance drawn from k Gaussian
// blobs — the canonical recoverable clustering workload.
func GenerateKClustered(seed int64, n, k int) *KInstance {
	rng := seededRNG(seed)
	return core.KFromSpace(nil, metric.GaussianClusters(nil, rng, n, k, 2, 100, 2), k)
}

// GenerateKUniform returns a k-clustering instance over uniform points.
func GenerateKUniform(seed int64, n, k int) *KInstance {
	rng := seededRNG(seed)
	return core.KFromSpace(nil, metric.UniformBox(nil, rng, n, 2, 100), k)
}

// ---------- lazy (point-backed) builders: the coreset ingest path ----------

// KFromCoords builds a lazy k-clustering instance over n = len(coords)/dim
// Euclidean points (point i at coords[i·dim:(i+1)·dim]): no n×n matrix is
// ever materialized, which is what lets *-coreset solvers take million-point
// inputs. Direct (dense-path) solvers densify it on demand, bounded by
// core.DenseLimit.
func KFromCoords(dim int, coords []float64, k int) (*KInstance, error) {
	if dim <= 0 || len(coords) == 0 || len(coords)%dim != 0 {
		return nil, fmt.Errorf("facloc: %d coords is not a multiple of dim %d", len(coords), dim)
	}
	ki := core.KFromSpaceLazy(&metric.Euclidean{Dim: dim, Coords: coords}, k)
	if err := ki.Validate(); err != nil {
		return nil, err
	}
	return ki, nil
}

// FromCoords builds a lazy UFL instance over Euclidean points: the first nf
// points are facilities (with the given opening costs), the rest clients.
// No nf×nc distance block is materialized.
func FromCoords(dim int, coords []float64, nf int, costs []float64) (*Instance, error) {
	if dim <= 0 || len(coords) == 0 || len(coords)%dim != 0 {
		return nil, fmt.Errorf("facloc: %d coords is not a multiple of dim %d", len(coords), dim)
	}
	n := len(coords) / dim
	if nf <= 0 || nf >= n {
		return nil, fmt.Errorf("facloc: nf=%d must be in (0, %d)", nf, n)
	}
	sp := &metric.Euclidean{Dim: dim, Coords: coords}
	fac := make([]int, nf)
	cli := make([]int, n-nf)
	for i := range fac {
		fac[i] = i
	}
	for j := range cli {
		cli[j] = nf + j
	}
	in := core.FromSpaceLazy(sp, fac, cli, costs)
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// GenerateHugeK returns a lazy k-clustering instance of n Gaussian-blob
// points — the million-point workload of the sketch path. Deterministic per
// seed; O(n·dim) memory, no matrix.
func GenerateHugeK(seed int64, n, k int) *KInstance {
	rng := seededRNG(seed)
	blobs := k
	if blobs < 2 {
		blobs = 2
	}
	return core.KFromSpaceLazy(metric.GaussianClusters(nil, rng, n, blobs, 2, 1000, 5), k)
}

// GenerateHugeUFL returns a lazy UFL instance with nf facilities and nc
// clients over Gaussian-blob points with uniform opening costs.
func GenerateHugeUFL(seed int64, nf, nc int) *Instance {
	rng := seededRNG(seed)
	sp := metric.GaussianClusters(nil, rng, nf+nc, 16, 2, 1000, 5)
	fac := make([]int, nf)
	cli := make([]int, nc)
	for i := range fac {
		fac[i] = i
	}
	for j := range cli {
		cli[j] = nf + j
	}
	return core.FromSpaceLazy(sp, fac, cli, metric.UniformCosts(nil, nf, 25))
}
